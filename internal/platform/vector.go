package platform

import (
	"fmt"
	"strconv"
	"strings"
)

// ResourceVector is HARP's extended resource vector (§4.1.2): for every core
// kind it counts how many cores run with exactly t hardware threads in use.
// For the Raptor Lake example from the paper — 3 P-cores of which one uses a
// single hardware thread and two use both, plus 4 E-cores — the vector is
// [1 2 | 4]: Counts[P] = [1, 2], Counts[E] = [4].
//
// The zero value is not usable; construct with NewResourceVector.
type ResourceVector struct {
	// Counts[kind][t-1] is the number of kind cores using t hardware threads.
	Counts [][]int `json:"counts"`
}

// NewResourceVector returns an all-zero vector shaped for the platform.
func NewResourceVector(p *Platform) ResourceVector {
	counts := make([][]int, len(p.Kinds))
	for i, k := range p.Kinds {
		counts[i] = make([]int, k.SMT)
	}
	return ResourceVector{Counts: counts}
}

// VectorOf is a convenience constructor from per-kind slices, e.g.
// VectorOf(p, []int{1, 2}, []int{4}) for the paper's [1 2 | 4] example.
func VectorOf(p *Platform, perKind ...[]int) (ResourceVector, error) {
	rv := NewResourceVector(p)
	if len(perKind) != len(p.Kinds) {
		return rv, fmt.Errorf("platform: vector with %d kinds for %d-kind platform",
			len(perKind), len(p.Kinds))
	}
	for kind, counts := range perKind {
		if len(counts) != p.Kinds[kind].SMT {
			return rv, fmt.Errorf("platform: kind %s expects %d slots, got %d",
				p.Kinds[kind].Name, p.Kinds[kind].SMT, len(counts))
		}
		copy(rv.Counts[kind], counts)
	}
	return rv, rv.Validate(p)
}

// Validate checks shape and non-negativity against the platform, and that no
// kind demands more cores than exist.
func (rv ResourceVector) Validate(p *Platform) error {
	if len(rv.Counts) != len(p.Kinds) {
		return fmt.Errorf("platform: vector has %d kinds, platform has %d",
			len(rv.Counts), len(p.Kinds))
	}
	for kind, counts := range rv.Counts {
		if len(counts) != p.Kinds[kind].SMT {
			return fmt.Errorf("platform: kind %s vector has %d slots, want %d",
				p.Kinds[kind].Name, len(counts), p.Kinds[kind].SMT)
		}
		total := 0
		for t, c := range counts {
			if c < 0 {
				return fmt.Errorf("platform: kind %s has %d cores at %d threads",
					p.Kinds[kind].Name, c, t+1)
			}
			total += c
		}
		if total > p.Kinds[kind].Count {
			return fmt.Errorf("platform: kind %s demands %d cores, only %d exist",
				p.Kinds[kind].Name, total, p.Kinds[kind].Count)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (rv ResourceVector) Clone() ResourceVector {
	counts := make([][]int, len(rv.Counts))
	for i, c := range rv.Counts {
		counts[i] = make([]int, len(c))
		copy(counts[i], c)
	}
	return ResourceVector{Counts: counts}
}

// Equal reports whether two vectors are identical in shape and counts.
func (rv ResourceVector) Equal(other ResourceVector) bool {
	if len(rv.Counts) != len(other.Counts) {
		return false
	}
	for i := range rv.Counts {
		if len(rv.Counts[i]) != len(other.Counts[i]) {
			return false
		}
		for j := range rv.Counts[i] {
			if rv.Counts[i][j] != other.Counts[i][j] {
				return false
			}
		}
	}
	return true
}

// IsZero reports whether the vector requests no resources at all.
func (rv ResourceVector) IsZero() bool {
	for _, counts := range rv.Counts {
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
	}
	return true
}

// Cores returns the number of physical cores of the given kind in use.
func (rv ResourceVector) Cores(kind KindID) int {
	if int(kind) >= len(rv.Counts) {
		return 0
	}
	var n int
	for _, c := range rv.Counts[kind] {
		n += c
	}
	return n
}

// TotalCores returns the number of physical cores in use across all kinds.
func (rv ResourceVector) TotalCores() int {
	var n int
	for kind := range rv.Counts {
		n += rv.Cores(KindID(kind))
	}
	return n
}

// Threads returns the total number of hardware threads in use.
func (rv ResourceVector) Threads() int {
	var n int
	for _, counts := range rv.Counts {
		for t, c := range counts {
			n += (t + 1) * c
		}
	}
	return n
}

// ThreadsOfKind returns the hardware threads in use on one kind.
func (rv ResourceVector) ThreadsOfKind(kind KindID) int {
	if int(kind) >= len(rv.Counts) {
		return 0
	}
	var n int
	for t, c := range rv.Counts[kind] {
		n += (t + 1) * c
	}
	return n
}

// CoreDemand returns the per-kind physical core demand — the multidimensional
// weight used in the MMKP resource constraint (Eq. 1b).
func (rv ResourceVector) CoreDemand() []int {
	demand := make([]int, len(rv.Counts))
	for kind := range rv.Counts {
		demand[kind] = rv.Cores(KindID(kind))
	}
	return demand
}

// Add returns rv + other element-wise. Shapes must match.
func (rv ResourceVector) Add(other ResourceVector) (ResourceVector, error) {
	if !sameShape(rv, other) {
		return ResourceVector{}, fmt.Errorf("platform: adding vectors of different shapes")
	}
	out := rv.Clone()
	for i := range out.Counts {
		for j := range out.Counts[i] {
			out.Counts[i][j] += other.Counts[i][j]
		}
	}
	return out, nil
}

// Sub returns rv − other element-wise, erroring if any count would go
// negative.
func (rv ResourceVector) Sub(other ResourceVector) (ResourceVector, error) {
	if !sameShape(rv, other) {
		return ResourceVector{}, fmt.Errorf("platform: subtracting vectors of different shapes")
	}
	out := rv.Clone()
	for i := range out.Counts {
		for j := range out.Counts[i] {
			out.Counts[i][j] -= other.Counts[i][j]
			if out.Counts[i][j] < 0 {
				return ResourceVector{}, fmt.Errorf(
					"platform: subtraction underflow at kind %d, %d threads", i, j+1)
			}
		}
	}
	return out, nil
}

// FitsWithinCores reports whether the per-kind core demand of rv fits within
// the given per-kind capacity. This is the constraint check of Eq. 1b — HARP
// partitions physical cores, so two single-thread allocations of the same
// P-core still conflict.
func (rv ResourceVector) FitsWithinCores(capacity []int) bool {
	for kind := range rv.Counts {
		if kind >= len(capacity) {
			return rv.Cores(KindID(kind)) == 0
		}
		if rv.Cores(KindID(kind)) > capacity[kind] {
			return false
		}
	}
	return true
}

// Key returns a canonical string form usable as a map key, e.g. "1,2|4".
func (rv ResourceVector) Key() string {
	var b strings.Builder
	for i, counts := range rv.Counts {
		if i > 0 {
			b.WriteByte('|')
		}
		for j, c := range counts {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(c))
		}
	}
	return b.String()
}

// ParseKey parses the Key form back into a vector shaped for the platform.
func ParseKey(p *Platform, key string) (ResourceVector, error) {
	rv := NewResourceVector(p)
	kinds := strings.Split(key, "|")
	if len(kinds) != len(p.Kinds) {
		return rv, fmt.Errorf("platform: key %q has %d kinds, want %d", key, len(kinds), len(p.Kinds))
	}
	for kind, part := range kinds {
		slots := strings.Split(part, ",")
		if len(slots) != p.Kinds[kind].SMT {
			return rv, fmt.Errorf("platform: key %q kind %d has %d slots, want %d",
				key, kind, len(slots), p.Kinds[kind].SMT)
		}
		for t, s := range slots {
			c, err := strconv.Atoi(s)
			if err != nil {
				return rv, fmt.Errorf("platform: key %q: %w", key, err)
			}
			rv.Counts[kind][t] = c
		}
	}
	return rv, rv.Validate(p)
}

// Features flattens the vector into a float slice — the regression-model
// input (§5.2).
func (rv ResourceVector) Features() []float64 {
	var n int
	for _, counts := range rv.Counts {
		n += len(counts)
	}
	out := make([]float64, 0, n)
	for _, counts := range rv.Counts {
		for _, c := range counts {
			out = append(out, float64(c))
		}
	}
	return out
}

// String implements fmt.Stringer using the canonical key form.
func (rv ResourceVector) String() string { return "[" + rv.Key() + "]" }

// EnumerateVectors returns every non-zero resource vector that fits on the
// platform, optionally capped at maxCoresPerKind (≤ 0 means no cap). This is
// the coarse-grained configuration space explored at runtime (§5.3) and swept
// offline for Fig. 1.
func EnumerateVectors(p *Platform, maxCoresPerKind int) []ResourceVector {
	caps := make([]int, len(p.Kinds))
	for i, k := range p.Kinds {
		caps[i] = k.Count
		if maxCoresPerKind > 0 && maxCoresPerKind < caps[i] {
			caps[i] = maxCoresPerKind
		}
	}
	return EnumerateVectorsWithin(p, caps)
}

// EnumerateVectorsWithin returns every non-zero vector whose per-kind core
// demand stays within the given caps — the configuration space available to
// one application during exploration, bounded by the resources the allocator
// granted it (§5.3).
func EnumerateVectorsWithin(p *Platform, caps []int) []ResourceVector {
	perKind := make([][][]int, len(p.Kinds))
	for kindIdx, k := range p.Kinds {
		limit := k.Count
		if kindIdx < len(caps) && caps[kindIdx] < limit {
			limit = caps[kindIdx]
		}
		if limit < 0 {
			limit = 0
		}
		perKind[kindIdx] = enumerateKind(k.SMT, limit)
	}

	var out []ResourceVector
	var build func(kind int, acc [][]int)
	build = func(kind int, acc [][]int) {
		if kind == len(perKind) {
			rv := ResourceVector{Counts: make([][]int, len(acc))}
			nonZero := false
			for i, counts := range acc {
				rv.Counts[i] = make([]int, len(counts))
				copy(rv.Counts[i], counts)
				for _, c := range counts {
					if c != 0 {
						nonZero = true
					}
				}
			}
			if nonZero {
				out = append(out, rv)
			}
			return
		}
		for _, counts := range perKind[kind] {
			build(kind+1, append(acc, counts))
		}
	}
	build(0, make([][]int, 0, len(p.Kinds)))
	return out
}

// enumerateKind lists all (c_1, …, c_smt) with Σc_t ≤ limit.
func enumerateKind(smt, limit int) [][]int {
	var out [][]int
	counts := make([]int, smt)
	var rec func(slot, used int)
	rec = func(slot, used int) {
		if slot == smt {
			c := make([]int, smt)
			copy(c, counts)
			out = append(out, c)
			return
		}
		for c := 0; c <= limit-used; c++ {
			counts[slot] = c
			rec(slot+1, used+c)
		}
		counts[slot] = 0
	}
	rec(0, 0)
	return out
}

func sameShape(a, b ResourceVector) bool {
	if len(a.Counts) != len(b.Counts) {
		return false
	}
	for i := range a.Counts {
		if len(a.Counts[i]) != len(b.Counts[i]) {
			return false
		}
	}
	return true
}
