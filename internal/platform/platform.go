// Package platform models single-ISA heterogeneous processors: core kinds
// (performance vs. efficiency), SMT, frequency ranges and a first-order power
// model, together with the extended resource vectors HARP uses to describe
// coarse-grained allocations (§4.1.2 of the paper).
//
// The package is pure data + algebra; execution dynamics live in internal/sim.
package platform

import (
	"errors"
	"fmt"
	"strings"
)

// KindID indexes a core kind within a Platform. Kind 0 is by convention the
// highest-performance kind (P / big).
type KindID int

// CoreKind describes one class of cores on the die.
type CoreKind struct {
	// Name is the vendor-ish label, e.g. "P", "E", "A15", "A7".
	Name string `json:"name"`
	// Count is the number of physical cores of this kind.
	Count int `json:"count"`
	// SMT is the number of hardware threads per core (1 = no SMT).
	SMT int `json:"smt"`
	// MaxFreqGHz is the frequency the evaluation pins the kind to
	// (the paper limits frequencies to avoid thermal throttling, §6.1).
	MaxFreqGHz float64 `json:"maxFreqGHz"`
	// MinFreqGHz is the lowest operating frequency, used by the
	// powersave/schedutil governor models.
	MinFreqGHz float64 `json:"minFreqGHz"`
	// IPC is the peak instructions-per-cycle for fully compute-bound work.
	IPC float64 `json:"ipc"`
	// MemPenalty in [0,1] scales how much memory-bound work slows this kind
	// relative to its compute rate. Bigger out-of-order cores hide less of
	// their speed advantage on memory-bound code, so P-cores carry a larger
	// penalty and P/E ratios shrink for memory-bound applications.
	MemPenalty float64 `json:"memPenalty"`
	// SMTMaxGain is the maximum aggregate throughput gain from running both
	// hardware threads of one core (e.g. 0.5 → 1.5× core throughput). The
	// realised gain also depends on the application's SMT friendliness.
	SMTMaxGain float64 `json:"smtMaxGain"`
	// SMTPowerFactor is the marginal power of each additional busy hardware
	// thread on an already-active core, relative to ActiveWatts. SMT shares
	// most core structures, so the second thread is much cheaper than the
	// first — this is why ep's Pareto front favours even P-hyperthread
	// counts (Fig. 1a). Ignored for SMT = 1 kinds.
	SMTPowerFactor float64 `json:"smtPowerFactor,omitempty"`
	// ActiveWatts is the dynamic power of one fully busy hardware thread at
	// MaxFreqGHz.
	ActiveWatts float64 `json:"activeWatts"`
	// IdleWatts is the per-core power when the core is idle but not in a
	// deep sleep state.
	IdleWatts float64 `json:"idleWatts"`
	// SleepWatts is the per-core power in the deepest idle state (reached
	// under the powersave/schedutil governors when a core stays idle).
	SleepWatts float64 `json:"sleepWatts"`
}

// Validate checks the kind for internally consistent values.
func (k CoreKind) Validate() error {
	switch {
	case k.Name == "":
		return errors.New("platform: core kind with empty name")
	case k.Count <= 0:
		return fmt.Errorf("platform: kind %s: count %d", k.Name, k.Count)
	case k.SMT <= 0:
		return fmt.Errorf("platform: kind %s: smt %d", k.Name, k.SMT)
	case k.MaxFreqGHz <= 0 || k.MinFreqGHz <= 0 || k.MinFreqGHz > k.MaxFreqGHz:
		return fmt.Errorf("platform: kind %s: bad frequency range [%g, %g]",
			k.Name, k.MinFreqGHz, k.MaxFreqGHz)
	case k.IPC <= 0:
		return fmt.Errorf("platform: kind %s: ipc %g", k.Name, k.IPC)
	case k.MemPenalty < 0 || k.MemPenalty > 1:
		return fmt.Errorf("platform: kind %s: memPenalty %g outside [0,1]", k.Name, k.MemPenalty)
	case k.SMTMaxGain < 0:
		return fmt.Errorf("platform: kind %s: smtMaxGain %g", k.Name, k.SMTMaxGain)
	case k.SMTPowerFactor < 0 || k.SMTPowerFactor > 1:
		return fmt.Errorf("platform: kind %s: smtPowerFactor %g outside [0,1]", k.Name, k.SMTPowerFactor)
	case k.ActiveWatts <= 0 || k.IdleWatts < 0 || k.SleepWatts < 0:
		return fmt.Errorf("platform: kind %s: bad power model", k.Name)
	}
	return nil
}

// ComputeRate returns the kind's peak throughput for fully compute-bound
// work, in giga-instructions per second per hardware thread at max frequency.
func (k CoreKind) ComputeRate() float64 {
	return k.MaxFreqGHz * k.IPC
}

// PowerShare returns the per-thread dynamic power scale when busySiblings
// hardware threads of one core are active: the core's total dynamic power is
// ActiveWatts·(1 + SMTPowerFactor·(n−1)), split evenly across the threads.
func (k CoreKind) PowerShare(busySiblings int) float64 {
	if busySiblings <= 1 {
		return 1
	}
	n := float64(busySiblings)
	return (1 + k.SMTPowerFactor*(n-1)) / n
}

// Platform is a complete hardware description, normally loaded from a
// hardware description file (see LoadFile) or one of the built-ins.
type Platform struct {
	// Name identifies the machine, e.g. "intel-raptor-lake-i9-13900k".
	Name string `json:"name"`
	// Kinds lists the core kinds, fastest first.
	Kinds []CoreKind `json:"kinds"`
	// UncoreWatts is the constant package power (fabric, memory controller).
	UncoreWatts float64 `json:"uncoreWatts"`
	// MemBWGips caps the aggregate rate (giga-instructions per second) at
	// which memory-bound work can progress across the whole package.
	MemBWGips float64 `json:"memBWGips"`
	// EnergySensors names the energy counter domains the machine exposes:
	// "package" for a single RAPL-style counter, "island" for per-kind
	// sensors (Odroid XU3-E).
	EnergySensors string `json:"energySensors"`
	// SimultaneousPMU reports whether performance counters can be read on
	// all core kinds at the same time. The Odroid cannot (§6.4), which is
	// why the paper evaluates only HARP (Offline) there.
	SimultaneousPMU bool `json:"simultaneousPMU"`
}

// Validate checks the platform description.
func (p *Platform) Validate() error {
	if p.Name == "" {
		return errors.New("platform: empty name")
	}
	if len(p.Kinds) == 0 {
		return errors.New("platform: no core kinds")
	}
	seen := make(map[string]bool, len(p.Kinds))
	for _, k := range p.Kinds {
		if err := k.Validate(); err != nil {
			return err
		}
		if seen[k.Name] {
			return fmt.Errorf("platform: duplicate kind %q", k.Name)
		}
		seen[k.Name] = true
	}
	if p.UncoreWatts < 0 {
		return fmt.Errorf("platform: uncoreWatts %g", p.UncoreWatts)
	}
	if p.MemBWGips <= 0 {
		return fmt.Errorf("platform: memBWGips %g", p.MemBWGips)
	}
	switch p.EnergySensors {
	case "package", "island":
	default:
		return fmt.Errorf("platform: unknown energySensors %q", p.EnergySensors)
	}
	return nil
}

// NumCores returns the total number of physical cores.
func (p *Platform) NumCores() int {
	var n int
	for _, k := range p.Kinds {
		n += k.Count
	}
	return n
}

// NumHWThreads returns the total number of hardware threads.
func (p *Platform) NumHWThreads() int {
	var n int
	for _, k := range p.Kinds {
		n += k.Count * k.SMT
	}
	return n
}

// KindOf maps a global core index to its kind. Cores are numbered kind by
// kind: kind 0 owns cores [0, Kinds[0].Count), and so on.
func (p *Platform) KindOf(core int) (KindID, error) {
	if core < 0 {
		return 0, fmt.Errorf("platform: negative core index %d", core)
	}
	offset := 0
	for id, k := range p.Kinds {
		if core < offset+k.Count {
			return KindID(id), nil
		}
		offset += k.Count
	}
	return 0, fmt.Errorf("platform: core index %d out of range (%d cores)", core, p.NumCores())
}

// CoreRange returns the half-open global core index range [lo, hi) for kind.
func (p *Platform) CoreRange(kind KindID) (lo, hi int) {
	for id, k := range p.Kinds {
		if KindID(id) == kind {
			return lo, lo + k.Count
		}
		lo += k.Count
	}
	return 0, 0
}

// Capacity returns the platform's total resource vector: every core of every
// kind running with all hardware threads in use.
func (p *Platform) Capacity() ResourceVector {
	rv := NewResourceVector(p)
	for id, k := range p.Kinds {
		rv.Counts[id][k.SMT-1] = k.Count
	}
	return rv
}

// MaxPower returns the package power with every hardware thread fully busy,
// useful for sanity checks and normalisation.
func (p *Platform) MaxPower() float64 {
	w := p.UncoreWatts
	for _, k := range p.Kinds {
		w += float64(k.Count) * (k.IdleWatts + float64(k.SMT)*k.ActiveWatts)
	}
	return w
}

// String returns a compact human-readable summary.
func (p *Platform) String() string {
	parts := make([]string, 0, len(p.Kinds))
	for _, k := range p.Kinds {
		parts = append(parts, fmt.Sprintf("%d×%s(smt%d@%.1fGHz)", k.Count, k.Name, k.SMT, k.MaxFreqGHz))
	}
	return fmt.Sprintf("%s[%s]", p.Name, strings.Join(parts, " "))
}
