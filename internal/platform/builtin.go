package platform

// RaptorLake returns the hardware description of the paper's desktop machine:
// an Intel Core i9-13900K with 8 P-cores (SMT-2, pinned to 4.6 GHz) and 16
// E-cores (3.8 GHz), RAPL package energy counters and full PMU coverage
// (§6.1). The power and throughput constants are first-order calibrations:
// P-cores are roughly twice as fast as E-cores on compute-bound work but far
// less energy-efficient, and the gap nearly vanishes for memory-bound work.
func RaptorLake() *Platform {
	return &Platform{
		Name: "intel-raptor-lake-i9-13900k",
		Kinds: []CoreKind{
			{
				Name:           "P",
				Count:          8,
				SMT:            2,
				MaxFreqGHz:     4.6,
				MinFreqGHz:     0.8,
				IPC:            4.2,
				MemPenalty:     0.55,
				SMTMaxGain:     0.45,
				SMTPowerFactor: 0.4,
				ActiveWatts:    9.5,
				IdleWatts:      1.2,
				SleepWatts:     0.1,
			},
			{
				Name:        "E",
				Count:       16,
				SMT:         1,
				MaxFreqGHz:  3.8,
				MinFreqGHz:  0.8,
				IPC:         2.6,
				MemPenalty:  0.25,
				SMTMaxGain:  0,
				ActiveWatts: 3.6,
				IdleWatts:   0.4,
				SleepWatts:  0.05,
			},
		},
		UncoreWatts:     14,
		MemBWGips:       60,
		EnergySensors:   "package",
		SimultaneousPMU: true,
	}
}

// OdroidXU3 returns the hardware description of the paper's embedded board:
// a Samsung Exynos 5422 with a 4-core Cortex-A15 (big, 1.8 GHz) island and a
// 4-core Cortex-A7 (LITTLE, 1.2 GHz) island, per-island energy sensors, and
// a PMU that cannot observe both islands at once (§6.1, §6.4).
func OdroidXU3() *Platform {
	return &Platform{
		Name: "odroid-xu3-e",
		Kinds: []CoreKind{
			{
				Name: "A15",
				// The out-of-order A15 hides part of its memory latency, so
				// its memory penalty is lower than the in-order A7's —
				// opposite to the Intel hybrid, where the small cores are
				// also out-of-order.
				Count:       4,
				SMT:         1,
				MaxFreqGHz:  1.8,
				MinFreqGHz:  0.2,
				IPC:         1.7,
				MemPenalty:  0.35,
				SMTMaxGain:  0,
				ActiveWatts: 1.4,
				IdleWatts:   0.15,
				SleepWatts:  0.02,
			},
			{
				Name:        "A7",
				Count:       4,
				SMT:         1,
				MaxFreqGHz:  1.2,
				MinFreqGHz:  0.2,
				IPC:         0.9,
				MemPenalty:  0.5,
				SMTMaxGain:  0,
				ActiveWatts: 0.22,
				IdleWatts:   0.03,
				SleepWatts:  0.005,
			},
		},
		UncoreWatts:     0.6,
		MemBWGips:       4,
		EnergySensors:   "island",
		SimultaneousPMU: false,
	}
}

// Builtin returns the built-in platform with the given name, or nil if
// unknown. Recognised names: the full platform names plus the shorthands
// "raptorlake"/"intel" and "odroid"/"xu3".
func Builtin(name string) *Platform {
	switch name {
	case "intel-raptor-lake-i9-13900k", "raptorlake", "intel":
		return RaptorLake()
	case "odroid-xu3-e", "odroid", "xu3":
		return OdroidXU3()
	default:
		return nil
	}
}
