package regress

import (
	"fmt"

	"github.com/harp-rm/harp/internal/mathx"
)

// Polynomial is ridge-stabilised polynomial regression with full cross
// terms up to the configured degree. HARP uses degree 2 in production: it
// matches degree 3's Pareto-front quality while converging from ~20 training
// points (§5.2).
type Polynomial struct {
	degree    int
	nFeatures int
	weights   []float64
	scale     []float64
}

var _ Model = (*Polynomial)(nil)

// NewPolynomial returns a polynomial model of the given degree (≥ 1).
func NewPolynomial(degree int) *Polynomial {
	if degree < 1 {
		degree = 1
	}
	return &Polynomial{degree: degree}
}

// Name implements Model.
func (p *Polynomial) Name() string { return fmt.Sprintf("poly%d", p.degree) }

// MinSamples returns the number of samples needed to determine the model.
func (p *Polynomial) MinSamples(nFeatures int) int {
	return len(monomials(nFeatures, p.degree))
}

// Fit implements Model.
func (p *Polynomial) Fit(x [][]float64, y []float64) error {
	nf, err := checkDesign(x, y)
	if err != nil {
		return err
	}
	// Scale each feature to ≈[0,1] for conditioning.
	scale := make([]float64, nf)
	for _, row := range x {
		for j, v := range row {
			if v > scale[j] {
				scale[j] = v
			}
		}
	}
	for j := range scale {
		if scale[j] == 0 {
			scale[j] = 1
		}
	}

	terms := monomials(nf, p.degree)
	design := make([][]float64, len(x))
	for i, row := range x {
		design[i] = expand(row, scale, terms)
	}
	w, err := mathx.LeastSquares(design, y, 1e-6)
	if err != nil {
		return fmt.Errorf("poly%d fit: %w", p.degree, err)
	}
	p.nFeatures = nf
	p.weights = w
	p.scale = scale
	return nil
}

// Predict implements Model.
func (p *Polynomial) Predict(x []float64) (float64, error) {
	if p.weights == nil {
		return 0, ErrNotFitted
	}
	if len(x) != p.nFeatures {
		return 0, fmt.Errorf("regress: %d features, model has %d", len(x), p.nFeatures)
	}
	terms := monomials(p.nFeatures, p.degree)
	return mathx.Dot(p.weights, expand(x, p.scale, terms)), nil
}

// monomials enumerates the exponent vectors of all monomials of total degree
// ≤ degree over nf variables, including the constant term.
func monomials(nf, degree int) [][]int {
	var out [][]int
	exp := make([]int, nf)
	var rec func(pos, remaining int)
	rec = func(pos, remaining int) {
		if pos == nf {
			cp := make([]int, nf)
			copy(cp, exp)
			out = append(out, cp)
			return
		}
		for d := 0; d <= remaining; d++ {
			exp[pos] = d
			rec(pos+1, remaining-d)
		}
		exp[pos] = 0
	}
	rec(0, degree)
	return out
}

// expand evaluates each monomial on the scaled input.
func expand(x, scale []float64, terms [][]int) []float64 {
	out := make([]float64, len(terms))
	for t, exps := range terms {
		v := 1.0
		for j, e := range exps {
			for k := 0; k < e; k++ {
				v *= x[j] / scale[j]
			}
		}
		out[t] = v
	}
	return out
}
