// Package regress implements the regression models HARP evaluates for
// approximating utility and power of unmeasured operating points (§5.2):
// polynomial regression of degrees 1–3, a small neural network, and a
// least-squares support-vector machine, together with the comparison
// metrics from Fig. 5 (MAPE, inverted generational distance, and the ratio
// of common Pareto points).
package regress

import (
	"errors"
	"fmt"
)

// Common errors.
var (
	// ErrNotFitted is returned by Predict before a successful Fit.
	ErrNotFitted = errors.New("regress: model not fitted")
	// ErrTooFewSamples is returned when Fit receives fewer samples than the
	// model can be estimated from.
	ErrTooFewSamples = errors.New("regress: too few samples")
)

// Model approximates a scalar response (utility or power) from an extended
// resource vector's feature form.
type Model interface {
	// Name identifies the model family, e.g. "poly2".
	Name() string
	// Fit trains on the design matrix x (one row per sample) and targets y.
	Fit(x [][]float64, y []float64) error
	// Predict evaluates the fitted model; it returns an error if called
	// before Fit succeeded or with the wrong feature width.
	Predict(x []float64) (float64, error)
}

// Factory constructs a fresh model; the exploration engine owns one factory
// and instantiates per-application, per-metric models from it.
type Factory func() Model

// Registry returns the model factories evaluated in Fig. 5, keyed by name.
func Registry(seed int64) map[string]Factory {
	return map[string]Factory{
		"poly1": func() Model { return NewPolynomial(1) },
		"poly2": func() Model { return NewPolynomial(2) },
		"poly3": func() Model { return NewPolynomial(3) },
		"nn":    func() Model { return NewNeuralNet(seed) },
		"svm":   func() Model { return NewSVM() },
	}
}

// checkDesign validates a design matrix and target vector.
func checkDesign(x [][]float64, y []float64) (nFeatures int, err error) {
	if len(x) == 0 {
		return 0, ErrTooFewSamples
	}
	if len(x) != len(y) {
		return 0, fmt.Errorf("regress: %d samples, %d targets", len(x), len(y))
	}
	nFeatures = len(x[0])
	if nFeatures == 0 {
		return 0, errors.New("regress: no features")
	}
	for i, row := range x {
		if len(row) != nFeatures {
			return 0, fmt.Errorf("regress: ragged design at row %d", i)
		}
	}
	return nFeatures, nil
}
