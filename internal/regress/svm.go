package regress

import (
	"fmt"
	"math"
	"sort"

	"github.com/harp-rm/harp/internal/mathx"
)

// SVM is a least-squares support-vector regression with an RBF kernel
// (LS-SVM): it solves (K + I/C)·α = y − b and predicts Σ αᵢ·k(x, xᵢ) + b.
// The kernel width follows the median-distance heuristic. This stands in for
// the SVR baseline of Fig. 5 (the exact SMO solver is an implementation
// detail; the bias/variance behaviour is what the comparison exercises).
type SVM struct {
	c     float64
	gamma float64

	support [][]float64
	alpha   []float64
	bias    float64
	scale   []float64
}

var _ Model = (*SVM)(nil)

// NewSVM returns an LS-SVM with default regularisation C = 10.
func NewSVM() *SVM { return &SVM{c: 10} }

// Name implements Model.
func (s *SVM) Name() string { return "svm" }

// Fit implements Model.
func (s *SVM) Fit(x [][]float64, y []float64) error {
	nf, err := checkDesign(x, y)
	if err != nil {
		return err
	}
	if len(x) < 2 {
		return ErrTooFewSamples
	}

	// Feature scaling.
	s.scale = make([]float64, nf)
	for _, row := range x {
		for j, v := range row {
			if a := math.Abs(v); a > s.scale[j] {
				s.scale[j] = a
			}
		}
	}
	for j := range s.scale {
		if s.scale[j] == 0 {
			s.scale[j] = 1
		}
	}
	scaled := make([][]float64, len(x))
	for i, row := range x {
		scaled[i] = make([]float64, nf)
		for j, v := range row {
			scaled[i][j] = v / s.scale[j]
		}
	}

	// Median pairwise distance heuristic for the RBF width.
	var dists []float64
	for i := 0; i < len(scaled); i++ {
		for j := i + 1; j < len(scaled); j++ {
			dists = append(dists, sqDist(scaled[i], scaled[j]))
		}
	}
	sort.Float64s(dists)
	med := 1.0
	if len(dists) > 0 {
		med = dists[len(dists)/2]
		if med == 0 {
			med = 1
		}
	}
	s.gamma = 1 / med

	// Centre targets for the bias term.
	s.bias = mathx.Mean(y)
	rhs := make([]float64, len(y))
	for i, v := range y {
		rhs[i] = v - s.bias
	}

	// (K + I/C) α = y − b.
	n := len(scaled)
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := range k[i] {
			k[i][j] = math.Exp(-s.gamma * sqDist(scaled[i], scaled[j]))
		}
		k[i][i] += 1 / s.c
	}
	alpha, err := mathx.SolveLinear(k, rhs)
	if err != nil {
		return fmt.Errorf("svm fit: %w", err)
	}
	s.support = scaled
	s.alpha = alpha
	return nil
}

// Predict implements Model.
func (s *SVM) Predict(x []float64) (float64, error) {
	if s.alpha == nil {
		return 0, ErrNotFitted
	}
	if len(x) != len(s.scale) {
		return 0, fmt.Errorf("regress: %d features, model has %d", len(x), len(s.scale))
	}
	xi := make([]float64, len(x))
	for j, v := range x {
		xi[j] = v / s.scale[j]
	}
	out := s.bias
	for i, sv := range s.support {
		out += s.alpha[i] * math.Exp(-s.gamma*sqDist(xi, sv))
	}
	return out, nil
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
