package regress

import (
	"math"
)

// ParetoIndices returns the indices of the (utility max, power min) Pareto
// front over parallel slices of characteristics. Ties keep the first
// occurrence, matching opoint's dominance semantics.
func ParetoIndices(utility, power []float64) []int {
	n := len(utility)
	var out []int
	for i := 0; i < n; i++ {
		dominated := false
		for j := 0; j < n && !dominated; j++ {
			if i == j {
				continue
			}
			betterEq := utility[j] >= utility[i] && power[j] <= power[i]
			strictly := utility[j] > utility[i] || power[j] < power[i]
			if betterEq && strictly {
				dominated = true
			}
			if betterEq && !strictly && j < i {
				dominated = true // duplicate; keep first
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// IGD computes the inverted generational distance from a reference front to
// a predicted front in (utility, power) space, normalised by the reference
// ranges so the two objectives weigh equally. Lower is better; 0 means the
// predicted front covers every reference point exactly.
func IGD(refU, refP, predU, predP []float64) float64 {
	if len(refU) == 0 || len(predU) == 0 {
		return math.NaN()
	}
	uLo, uHi := minMax(refU)
	pLo, pHi := minMax(refP)
	uRange := uHi - uLo
	pRange := pHi - pLo
	if uRange == 0 {
		uRange = 1
	}
	if pRange == 0 {
		pRange = 1
	}
	var sum float64
	for i := range refU {
		best := math.Inf(1)
		for j := range predU {
			du := (refU[i] - predU[j]) / uRange
			dp := (refP[i] - predP[j]) / pRange
			if d := math.Sqrt(du*du + dp*dp); d < best {
				best = d
			}
		}
		sum += best
	}
	return sum / float64(len(refU))
}

// CommonRatio returns |ref ∩ pred| / |ref| over two index sets identifying
// operating points (Fig. 5's "ratio of common operating points"; higher is
// better).
func CommonRatio(ref, pred []int) float64 {
	if len(ref) == 0 {
		return math.NaN()
	}
	inPred := make(map[int]bool, len(pred))
	for _, i := range pred {
		inPred[i] = true
	}
	var common int
	for _, i := range ref {
		if inPred[i] {
			common++
		}
	}
	return float64(common) / float64(len(ref))
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range xs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}
