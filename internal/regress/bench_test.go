package regress

import "testing"

func benchData() (xs [][]float64, ys []float64) {
	return sampleGrid()
}

// BenchmarkPoly2Fit measures fitting the production model on a 25-point
// exploration table — what every refinement step pays.
func BenchmarkPoly2Fit(b *testing.B) {
	xs, ys := benchData()
	train, trainY := subset(xs, ys, 25, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewPolynomial(2)
		if err := m.Fit(train, trainY); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPoly2Predict measures one prediction — done for every candidate
// configuration on every exploration step.
func BenchmarkPoly2Predict(b *testing.B) {
	xs, ys := benchData()
	m := NewPolynomial(2)
	if err := m.Fit(xs, ys); err != nil {
		b.Fatal(err)
	}
	probe := []float64{2, 3, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(probe); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNNFit measures the neural-network baseline's training cost.
func BenchmarkNNFit(b *testing.B) {
	xs, ys := benchData()
	train, trainY := subset(xs, ys, 25, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewNeuralNet(int64(i))
		if err := m.Fit(train, trainY); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSVMFit measures the LS-SVM baseline's training cost.
func BenchmarkSVMFit(b *testing.B) {
	xs, ys := benchData()
	train, trainY := subset(xs, ys, 40, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewSVM()
		if err := m.Fit(train, trainY); err != nil {
			b.Fatal(err)
		}
	}
}
