package regress

import (
	"fmt"
	"math"
	"math/rand"
)

// NeuralNet is a small fully connected network (two hidden layers of 16 tanh
// units) trained with Adam, matching the NN baseline of Fig. 5. With the
// handful of samples available during runtime exploration it tends to
// underfit utility while doing acceptably on power — exactly the behaviour
// the paper reports.
type NeuralNet struct {
	seed      int64
	hidden    int
	epochs    int
	lr        float64
	nFeatures int

	// parameters: w1[h][f], b1[h], w2[h2][h], b2[h2], w3[h2], b3
	w1, w2   [][]float64
	b1, b2   []float64
	w3       []float64
	b3       float64
	inScale  []float64
	outMean  float64
	outScale float64
	fitted   bool
}

var _ Model = (*NeuralNet)(nil)

// NewNeuralNet returns an MLP with deterministic initialisation.
func NewNeuralNet(seed int64) *NeuralNet {
	return &NeuralNet{seed: seed, hidden: 16, epochs: 300, lr: 0.01}
}

// Name implements Model.
func (n *NeuralNet) Name() string { return "nn" }

// Fit implements Model.
func (n *NeuralNet) Fit(x [][]float64, y []float64) error {
	nf, err := checkDesign(x, y)
	if err != nil {
		return err
	}
	if len(x) < 3 {
		return ErrTooFewSamples
	}
	rng := rand.New(rand.NewSource(n.seed))
	h := n.hidden

	// Normalise inputs and outputs.
	n.inScale = make([]float64, nf)
	for _, row := range x {
		for j, v := range row {
			if a := math.Abs(v); a > n.inScale[j] {
				n.inScale[j] = a
			}
		}
	}
	for j := range n.inScale {
		if n.inScale[j] == 0 {
			n.inScale[j] = 1
		}
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var spread float64
	for _, v := range y {
		spread += (v - mean) * (v - mean)
	}
	spread = math.Sqrt(spread / float64(len(y)))
	if spread == 0 {
		spread = 1
	}
	n.outMean, n.outScale = mean, spread

	initMat := func(rows, cols int) [][]float64 {
		m := make([][]float64, rows)
		s := math.Sqrt(2 / float64(cols))
		for i := range m {
			m[i] = make([]float64, cols)
			for j := range m[i] {
				m[i][j] = rng.NormFloat64() * s
			}
		}
		return m
	}
	n.nFeatures = nf
	n.w1 = initMat(h, nf)
	n.b1 = make([]float64, h)
	n.w2 = initMat(h, h)
	n.b2 = make([]float64, h)
	n.w3 = make([]float64, h)
	for i := range n.w3 {
		n.w3[i] = rng.NormFloat64() * math.Sqrt(2/float64(h))
	}
	n.b3 = 0

	// Adam state, flattened parameter views.
	params, grads := n.paramRefs()
	mAdam := make([]float64, len(params))
	vAdam := make([]float64, len(params))
	const beta1, beta2, eps = 0.9, 0.999, 1e-8

	order := rng.Perm(len(x))
	step := 0
	for epoch := 0; epoch < n.epochs; epoch++ {
		for _, idx := range order {
			step++
			xi := n.scaleIn(x[idx])
			target := (y[idx] - n.outMean) / n.outScale

			// Forward.
			a1 := make([]float64, h)
			for i := 0; i < h; i++ {
				s := n.b1[i]
				for j := 0; j < nf; j++ {
					s += n.w1[i][j] * xi[j]
				}
				a1[i] = math.Tanh(s)
			}
			a2 := make([]float64, h)
			for i := 0; i < h; i++ {
				s := n.b2[i]
				for j := 0; j < h; j++ {
					s += n.w2[i][j] * a1[j]
				}
				a2[i] = math.Tanh(s)
			}
			out := n.b3
			for i := 0; i < h; i++ {
				out += n.w3[i] * a2[i]
			}

			// Backward (squared error).
			dOut := out - target
			for i := range grads {
				*grads[i] = 0
			}
			gw3 := make([]float64, h)
			d2 := make([]float64, h)
			for i := 0; i < h; i++ {
				gw3[i] = dOut * a2[i]
				d2[i] = dOut * n.w3[i] * (1 - a2[i]*a2[i])
			}
			d1 := make([]float64, h)
			for j := 0; j < h; j++ {
				var s float64
				for i := 0; i < h; i++ {
					s += d2[i] * n.w2[i][j]
				}
				d1[j] = s * (1 - a1[j]*a1[j])
			}
			// Accumulate into the flattened gradient view.
			g := 0
			for i := 0; i < h; i++ {
				for j := 0; j < nf; j++ {
					*grads[g] = d1[i] * xi[j]
					g++
				}
			}
			for i := 0; i < h; i++ {
				*grads[g] = d1[i]
				g++
			}
			for i := 0; i < h; i++ {
				for j := 0; j < h; j++ {
					*grads[g] = d2[i] * a1[j]
					g++
				}
			}
			for i := 0; i < h; i++ {
				*grads[g] = d2[i]
				g++
			}
			for i := 0; i < h; i++ {
				*grads[g] = gw3[i]
				g++
			}
			*grads[g] = dOut

			// Adam update (bias corrections are per-step constants).
			mCorr := 1 / (1 - math.Pow(beta1, float64(step)))
			vCorr := 1 / (1 - math.Pow(beta2, float64(step)))
			for i := range params {
				gi := *grads[i]
				mAdam[i] = beta1*mAdam[i] + (1-beta1)*gi
				vAdam[i] = beta2*vAdam[i] + (1-beta2)*gi*gi
				mh := mAdam[i] * mCorr
				vh := vAdam[i] * vCorr
				*params[i] -= n.lr * mh / (math.Sqrt(vh) + eps)
			}
		}
	}
	n.fitted = true
	return nil
}

// paramRefs returns pointers to every parameter and matching gradient slots.
func (n *NeuralNet) paramRefs() (params, grads []*float64) {
	add := func(p *float64) {
		params = append(params, p)
		g := new(float64)
		grads = append(grads, g)
	}
	for i := range n.w1 {
		for j := range n.w1[i] {
			add(&n.w1[i][j])
		}
	}
	for i := range n.b1 {
		add(&n.b1[i])
	}
	for i := range n.w2 {
		for j := range n.w2[i] {
			add(&n.w2[i][j])
		}
	}
	for i := range n.b2 {
		add(&n.b2[i])
	}
	for i := range n.w3 {
		add(&n.w3[i])
	}
	add(&n.b3)
	return params, grads
}

func (n *NeuralNet) scaleIn(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = v / n.inScale[j]
	}
	return out
}

// Predict implements Model.
func (n *NeuralNet) Predict(x []float64) (float64, error) {
	if !n.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != n.nFeatures {
		return 0, fmt.Errorf("regress: %d features, model has %d", len(x), n.nFeatures)
	}
	xi := n.scaleIn(x)
	h := n.hidden
	a1 := make([]float64, h)
	for i := 0; i < h; i++ {
		s := n.b1[i]
		for j := range xi {
			s += n.w1[i][j] * xi[j]
		}
		a1[i] = math.Tanh(s)
	}
	a2 := make([]float64, h)
	for i := 0; i < h; i++ {
		s := n.b2[i]
		for j := 0; j < h; j++ {
			s += n.w2[i][j] * a1[j]
		}
		a2[i] = math.Tanh(s)
	}
	out := n.b3
	for i := 0; i < h; i++ {
		out += n.w3[i] * a2[i]
	}
	return out*n.outScale + n.outMean, nil
}
