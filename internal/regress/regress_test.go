package regress

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/harp-rm/harp/internal/mathx"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/workload"
)

// quadSurface is a smooth ground-truth function resembling a utility surface
// over (p1, p2, e) resource vectors.
func quadSurface(x []float64) float64 {
	return 5 + 3*x[0] + 2*x[1] + 1.5*x[2] - 0.2*x[0]*x[0] - 0.1*x[1]*x[2]
}

// sampleGrid returns all vectors of a small config space and their values.
func sampleGrid() (xs [][]float64, ys []float64) {
	for p1 := 0; p1 <= 4; p1++ {
		for p2 := 0; p2 <= 4-p1; p2++ {
			for e := 0; e <= 6; e++ {
				x := []float64{float64(p1), float64(p2), float64(e)}
				xs = append(xs, x)
				ys = append(ys, quadSurface(x))
			}
		}
	}
	return xs, ys
}

func subset(xs [][]float64, ys []float64, n int, seed int64) ([][]float64, []float64) {
	r := rand.New(rand.NewSource(seed))
	idx := r.Perm(len(xs))[:n]
	sx := make([][]float64, n)
	sy := make([]float64, n)
	for i, j := range idx {
		sx[i] = xs[j]
		sy[i] = ys[j]
	}
	return sx, sy
}

func TestRegistryNames(t *testing.T) {
	reg := Registry(1)
	for _, name := range []string{"poly1", "poly2", "poly3", "nn", "svm"} {
		f, ok := reg[name]
		if !ok {
			t.Errorf("registry missing %q", name)
			continue
		}
		if got := f().Name(); got != name {
			t.Errorf("factory %q builds model named %q", name, got)
		}
	}
}

func TestPredictBeforeFit(t *testing.T) {
	for name, f := range Registry(1) {
		if _, err := f().Predict([]float64{1, 2, 3}); !errors.Is(err, ErrNotFitted) {
			t.Errorf("%s: Predict before Fit: %v, want ErrNotFitted", name, err)
		}
	}
}

func TestFitRejectsBadDesign(t *testing.T) {
	for name, f := range Registry(1) {
		m := f()
		if err := m.Fit(nil, nil); !errors.Is(err, ErrTooFewSamples) {
			t.Errorf("%s: empty fit: %v, want ErrTooFewSamples", name, err)
		}
		if err := m.Fit([][]float64{{1}, {2}}, []float64{1}); err == nil {
			t.Errorf("%s: mismatched fit accepted", name)
		}
		if err := m.Fit([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
			t.Errorf("%s: ragged design accepted", name)
		}
	}
}

func TestPredictWrongWidth(t *testing.T) {
	xs, ys := sampleGrid()
	for name, f := range Registry(1) {
		m := f()
		if err := m.Fit(xs, ys); err != nil {
			t.Fatalf("%s: Fit: %v", name, err)
		}
		if _, err := m.Predict([]float64{1}); err == nil {
			t.Errorf("%s: wrong-width Predict accepted", name)
		}
	}
}

// Degree-2 polynomial must recover a quadratic surface almost exactly.
func TestPoly2RecoversQuadratic(t *testing.T) {
	xs, ys := sampleGrid()
	train, trainY := subset(xs, ys, 20, 7)
	m := NewPolynomial(2)
	if err := m.Fit(train, trainY); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	preds := make([]float64, len(xs))
	for i, x := range xs {
		v, err := m.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		preds[i] = v
	}
	if mape := mathx.MAPE(ys, preds); mape > 1 {
		t.Errorf("poly2 MAPE on quadratic surface = %.2f%%, want < 1%%", mape)
	}
}

// All models should fit the training data reasonably on the full grid.
func TestAllModelsFitFullGrid(t *testing.T) {
	xs, ys := sampleGrid()
	for name, f := range Registry(3) {
		t.Run(name, func(t *testing.T) {
			m := f()
			if err := m.Fit(xs, ys); err != nil {
				t.Fatalf("Fit: %v", err)
			}
			preds := make([]float64, len(xs))
			for i, x := range xs {
				v, err := m.Predict(x)
				if err != nil {
					t.Fatal(err)
				}
				preds[i] = v
			}
			mape := mathx.MAPE(ys, preds)
			limit := 5.0
			if name == "nn" {
				limit = 20 // small nets underfit; Fig. 5 relies on this
			}
			if mape > limit {
				t.Errorf("%s full-grid MAPE = %.2f%%, want < %.0f%%", name, mape, limit)
			}
		})
	}
}

// Polynomial accuracy must improve with training-set size (the left plots of
// Fig. 5).
func TestPolyAccuracyImprovesWithData(t *testing.T) {
	xs, ys := sampleGrid()
	// Add noise so small subsets genuinely underdetermine the fit.
	r := rand.New(rand.NewSource(5))
	noisy := make([]float64, len(ys))
	for i, v := range ys {
		noisy[i] = v * (1 + 0.02*r.NormFloat64())
	}
	mapeAt := func(n int) float64 {
		var total float64
		for seed := int64(0); seed < 5; seed++ {
			train, trainY := subset(xs, noisy, n, seed)
			m := NewPolynomial(2)
			if err := m.Fit(train, trainY); err != nil {
				t.Fatalf("Fit(%d): %v", n, err)
			}
			preds := make([]float64, len(xs))
			for i, x := range xs {
				preds[i], _ = m.Predict(x)
			}
			total += mathx.MAPE(ys, preds)
		}
		return total / 5
	}
	small := mapeAt(12)
	large := mapeAt(80)
	if large >= small {
		t.Errorf("MAPE did not improve with data: %d pts → %.2f%%, %d pts → %.2f%%",
			12, small, 80, large)
	}
}

// The real utility surface of a workload must be approximated well by poly2
// from ~20 points — the paper's justification for using degree 2 (§5.2).
func TestPoly2OnWorkloadSurface(t *testing.T) {
	plat := platform.RaptorLake()
	prof, err := workload.ByName(workload.IntelApps(), "ft.C")
	if err != nil {
		t.Fatal(err)
	}
	vecs := platform.EnumerateVectors(plat, 4)
	var xs [][]float64
	var utils []float64
	for _, rv := range vecs {
		ev := workload.EvaluateVector(plat, prof, rv)
		xs = append(xs, rv.Features())
		utils = append(utils, ev.Utility)
	}
	train, trainY := subset(xs, utils, 25, 11)
	m := NewPolynomial(2)
	if err := m.Fit(train, trainY); err != nil {
		t.Fatal(err)
	}
	preds := make([]float64, len(xs))
	for i, x := range xs {
		preds[i], _ = m.Predict(x)
	}
	if mape := mathx.MAPE(utils, preds); mape > 25 {
		t.Errorf("poly2 MAPE on ft.C utility surface = %.1f%%, want < 25%%", mape)
	}
}

func TestNeuralNetDeterministicBySeed(t *testing.T) {
	xs, ys := sampleGrid()
	train, trainY := subset(xs, ys, 30, 2)
	run := func() float64 {
		m := NewNeuralNet(42)
		if err := m.Fit(train, trainY); err != nil {
			t.Fatal(err)
		}
		v, err := m.Predict([]float64{2, 1, 3})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if a, b := run(), run(); a != b {
		t.Errorf("NN not deterministic: %g vs %g", a, b)
	}
}

func TestSVMInterpolatesTrainingPoints(t *testing.T) {
	xs, ys := sampleGrid()
	train, trainY := subset(xs, ys, 40, 9)
	m := NewSVM()
	if err := m.Fit(train, trainY); err != nil {
		t.Fatal(err)
	}
	preds := make([]float64, len(train))
	for i, x := range train {
		preds[i], _ = m.Predict(x)
	}
	if mape := mathx.MAPE(trainY, preds); mape > 10 {
		t.Errorf("SVM training MAPE = %.2f%%, want < 10%%", mape)
	}
}

func TestParetoIndices(t *testing.T) {
	utility := []float64{10, 8, 6, 10, 2}
	power := []float64{5, 4, 2, 6, 1}
	// Front: (10,5), (8,4), (6,2), (2,1). (10,6) dominated by (10,5).
	got := ParetoIndices(utility, power)
	want := map[int]bool{0: true, 1: true, 2: true, 4: true}
	if len(got) != len(want) {
		t.Fatalf("front = %v, want indices %v", got, want)
	}
	for _, i := range got {
		if !want[i] {
			t.Errorf("unexpected front index %d", i)
		}
	}
}

func TestParetoIndicesDuplicates(t *testing.T) {
	got := ParetoIndices([]float64{5, 5}, []float64{2, 2})
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("duplicate front = %v, want [0]", got)
	}
}

func TestIGD(t *testing.T) {
	refU := []float64{0, 10}
	refP := []float64{0, 10}
	// Identical fronts → IGD 0.
	if got := IGD(refU, refP, refU, refP); got != 0 {
		t.Errorf("IGD(identical) = %g, want 0", got)
	}
	// A displaced front has positive IGD.
	if got := IGD(refU, refP, []float64{5}, []float64{5}); got <= 0 {
		t.Errorf("IGD(displaced) = %g, want > 0", got)
	}
	if got := IGD(nil, nil, refU, refP); !math.IsNaN(got) {
		t.Errorf("IGD(empty ref) = %g, want NaN", got)
	}
}

func TestCommonRatio(t *testing.T) {
	tests := []struct {
		name      string
		ref, pred []int
		want      float64
	}{
		{name: "full overlap", ref: []int{1, 2}, pred: []int{2, 1}, want: 1},
		{name: "half", ref: []int{1, 2}, pred: []int{2, 9}, want: 0.5},
		{name: "none", ref: []int{1}, pred: []int{2}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CommonRatio(tt.ref, tt.pred); got != tt.want {
				t.Errorf("CommonRatio = %g, want %g", got, tt.want)
			}
		})
	}
	if got := CommonRatio(nil, []int{1}); !math.IsNaN(got) {
		t.Errorf("CommonRatio(empty ref) = %g, want NaN", got)
	}
}
