package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/harp-rm/harp/internal/mathx"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/workload"
)

// Default machine parameters.
const (
	// DefaultQuantum is the scheduling/accounting time step.
	DefaultQuantum = 10 * time.Millisecond
	// DefaultMigrationStall is the progress lost when the resource manager
	// moves a process to different cores (cache refill, thread migration).
	DefaultMigrationStall = 8 * time.Millisecond
)

// ErrMachineIdle is returned by RunUntilIdle when no process finishes within
// the allowed horizon.
var ErrMachineIdle = errors.New("sim: horizon reached before machine became idle")

// Option configures a Machine.
type Option interface{ apply(*Machine) }

type optionFunc func(*Machine)

func (f optionFunc) apply(m *Machine) { f(m) }

// WithQuantum sets the simulation time step.
func WithQuantum(q time.Duration) Option {
	return optionFunc(func(m *Machine) { m.quantum = q })
}

// WithGovernor selects the DVFS/idle governor model.
func WithGovernor(g Governor) Option {
	return optionFunc(func(m *Machine) { m.governor = g })
}

// WithMigrationStall sets the stall charged on RM-driven reconfiguration.
func WithMigrationStall(d time.Duration) Option {
	return optionFunc(func(m *Machine) { m.migrationStall = d })
}

// WithRebalance sets how often the OS scheduler re-places threads even
// without topology changes (load-balancing ticks). Zero disables periodic
// rebalancing.
func WithRebalance(d time.Duration) Option {
	return optionFunc(func(m *Machine) { m.rebalanceEvery = d })
}

type ticker struct {
	period time.Duration
	next   time.Duration
	fn     func(now time.Duration)
	dead   bool
}

// Machine simulates one heterogeneous computer: topology, an OS scheduler,
// running processes, and energy sensors. It is strictly single-goroutine;
// all callbacks fire on the caller's goroutine during Step.
type Machine struct {
	plat           *platform.Platform
	topo           []HWInfo
	sched          Scheduler
	quantum        time.Duration
	governor       Governor
	migrationStall time.Duration
	rebalanceEvery time.Duration
	lastPlace      time.Duration

	now       time.Duration
	nextID    ProcID
	procs     map[ProcID]*Proc
	order     []ProcID
	dirty     bool
	placement map[ProcID][]HWThread
	tickers   []*ticker

	energy  EnergyReading
	onStart []func(*Proc)
	onExit  []func(*Proc)

	// scratch buffers reused across steps
	loads      []int
	busyCore   []int
	busyByHW   []float64
	coreOffset int
}

// New creates a machine for the platform with the given OS-level scheduler.
func New(plat *platform.Platform, sched Scheduler, opts ...Option) (*Machine, error) {
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	if sched == nil {
		return nil, errors.New("sim: nil scheduler")
	}
	m := &Machine{
		plat:           plat,
		sched:          sched,
		quantum:        DefaultQuantum,
		governor:       GovernorPowersave,
		migrationStall: DefaultMigrationStall,
		rebalanceEvery: 200 * time.Millisecond,
		procs:          make(map[ProcID]*Proc),
		placement:      make(map[ProcID][]HWThread),
	}
	for _, o := range opts {
		o.apply(m)
	}
	if m.quantum <= 0 {
		return nil, fmt.Errorf("sim: quantum %v", m.quantum)
	}
	if m.governor < GovernorPowersave || m.governor > GovernorPerformance {
		return nil, fmt.Errorf("sim: bad governor %d", m.governor)
	}

	core := 0
	var id HWThread
	for kindIdx, k := range plat.Kinds {
		for c := 0; c < k.Count; c++ {
			for s := 0; s < k.SMT; s++ {
				m.topo = append(m.topo, HWInfo{
					ID:      id,
					Core:    core,
					Kind:    platform.KindID(kindIdx),
					Sibling: s,
				})
				id++
			}
			core++
		}
	}
	m.loads = make([]int, len(m.topo))
	m.busyCore = make([]int, core)
	m.busyByHW = make([]float64, len(m.topo))
	m.energy.ByKindJ = make([]float64, len(plat.Kinds))
	return m, nil
}

// Platform returns the machine's hardware description.
func (m *Machine) Platform() *platform.Platform { return m.plat }

// Governor returns the active governor model.
func (m *Machine) Governor() Governor { return m.governor }

// Now returns the current virtual time.
func (m *Machine) Now() time.Duration { return m.now }

// Quantum returns the simulation time step.
func (m *Machine) Quantum() time.Duration { return m.quantum }

// Topology returns a copy of the hardware-thread table.
func (m *Machine) Topology() []HWInfo {
	out := make([]HWInfo, len(m.topo))
	copy(out, m.topo)
	return out
}

// HWThreadsOfKind returns the hardware-thread IDs belonging to a core kind.
func (m *Machine) HWThreadsOfKind(kind platform.KindID) []HWThread {
	var out []HWThread
	for _, info := range m.topo {
		if info.Kind == kind {
			out = append(out, info.ID)
		}
	}
	return out
}

// Energy returns a snapshot of the machine's energy sensors.
func (m *Machine) Energy() EnergyReading {
	e := m.energy
	e.ByKindJ = make([]float64, len(m.energy.ByKindJ))
	copy(e.ByKindJ, m.energy.ByKindJ)
	return e
}

// OnProcStart registers a callback fired whenever a process starts.
func (m *Machine) OnProcStart(fn func(*Proc)) { m.onStart = append(m.onStart, fn) }

// OnProcExit registers a callback fired whenever a process finishes.
func (m *Machine) OnProcExit(fn func(*Proc)) { m.onExit = append(m.onExit, fn) }

// Every schedules fn to run each period of virtual time (first firing one
// period from now). The returned function cancels the ticker.
func (m *Machine) Every(period time.Duration, fn func(now time.Duration)) (cancel func()) {
	t := &ticker{period: period, next: m.now + period, fn: fn}
	m.tickers = append(m.tickers, t)
	return func() { t.dead = true }
}

// Start launches a process running the given profile. The instance name must
// be unique among live processes. The process starts with its moldable
// default thread count and unrestricted affinity.
func (m *Machine) Start(p *workload.Profile, instance string) (*Proc, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if instance == "" {
		instance = p.Name
	}
	for _, pid := range m.order {
		if m.procs[pid].name == instance {
			return nil, fmt.Errorf("sim: instance %q already running", instance)
		}
	}
	m.nextID++
	proc := &Proc{
		id:          m.nextID,
		name:        instance,
		profile:     p,
		threads:     p.Threads(m.plat),
		workLeft:    p.WorkGI,
		startupLeft: p.StartupGI,
		startedAt:   m.now,
		utilEMA:     mathx.NewEMA(0.05),
	}
	proc.counters.CPUTimeByKind = make([]float64, len(m.plat.Kinds))
	m.procs[proc.id] = proc
	m.order = append(m.order, proc.id)
	m.dirty = true
	for _, fn := range m.onStart {
		fn(proc)
	}
	return proc, nil
}

// Proc returns the live process with the given ID.
func (m *Machine) Proc(id ProcID) (*Proc, error) {
	p, ok := m.procs[id]
	if !ok {
		return nil, fmt.Errorf("sim: no live process %d", id)
	}
	return p, nil
}

// Procs returns the live processes in start order.
func (m *Machine) Procs() []*Proc {
	out := make([]*Proc, 0, len(m.order))
	for _, pid := range m.order {
		out = append(out, m.procs[pid])
	}
	return out
}

// SetThreads changes a process's parallelisation degree (libharp's scalable
// knob). Static applications cannot be rescaled. A migration stall is
// charged.
func (m *Machine) SetThreads(id ProcID, n int) error {
	p, err := m.Proc(id)
	if err != nil {
		return err
	}
	if p.profile.Adaptivity == workload.Static {
		return fmt.Errorf("sim: %s is static; cannot change threads", p.name)
	}
	if n < 1 {
		return fmt.Errorf("sim: thread count %d", n)
	}
	if n == p.threads {
		return nil
	}
	p.threads = n
	p.stallUntil = m.now + m.migrationStall
	m.dirty = true
	return nil
}

// SetAffinity restricts a process to the given hardware threads (nil clears
// the restriction). A migration stall is charged.
func (m *Machine) SetAffinity(id ProcID, hw []HWThread) error {
	p, err := m.Proc(id)
	if err != nil {
		return err
	}
	if hw == nil {
		p.affinity = nil
	} else {
		if len(hw) == 0 {
			return fmt.Errorf("sim: empty affinity for %s", p.name)
		}
		seen := make(map[HWThread]bool, len(hw))
		cp := make([]HWThread, 0, len(hw))
		for _, h := range hw {
			if h < 0 || int(h) >= len(m.topo) {
				return fmt.Errorf("sim: hardware thread %d out of range", h)
			}
			if seen[h] {
				continue
			}
			seen[h] = true
			cp = append(cp, h)
		}
		sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
		p.affinity = cp
	}
	p.stallUntil = m.now + m.migrationStall
	m.dirty = true
	return nil
}

// SetRateTax charges the process a constant fraction of its useful progress,
// modelling management overhead (perf multiplexing, protocol traffic, RM
// CPU use — §6.6).
func (m *Machine) SetRateTax(id ProcID, tax float64) error {
	p, err := m.Proc(id)
	if err != nil {
		return err
	}
	if tax < 0 || tax >= 1 {
		return fmt.Errorf("sim: rate tax %g", tax)
	}
	p.rateTax = tax
	return nil
}

// OnExit registers a per-process exit callback.
func (m *Machine) OnExit(id ProcID, fn func(*Proc)) error {
	p, err := m.Proc(id)
	if err != nil {
		return err
	}
	p.onExit = append(p.onExit, fn)
	return nil
}

// Step advances the machine by one quantum.
func (m *Machine) Step() error {
	if m.rebalanceEvery > 0 && m.now-m.lastPlace >= m.rebalanceEvery {
		m.dirty = true
	}
	if m.dirty {
		if err := m.place(); err != nil {
			return err
		}
	}
	dt := m.quantum.Seconds()

	// Hardware-thread loads and per-core busy sibling counts.
	for i := range m.loads {
		m.loads[i] = 0
		m.busyByHW[i] = 0
	}
	for i := range m.busyCore {
		m.busyCore[i] = 0
	}
	for _, pid := range m.order {
		for _, hw := range m.effectiveAssignment(pid) {
			m.loads[hw]++
		}
	}
	for hw, l := range m.loads {
		if l > 0 {
			m.busyCore[m.topo[hw].Core]++
		}
	}
	busyFreq := m.governor.busyFreqScale()

	// First pass: unconstrained responses.
	type evalState struct {
		proc  *Proc
		slots []workload.Slot
		hws   []HWThread
		resp  workload.Response
	}
	states := make([]evalState, 0, len(m.order))
	var totalTraffic float64
	for _, pid := range m.order {
		p := m.procs[pid]
		st := evalState{proc: p}
		if m.now >= p.stallUntil {
			asg := m.effectiveAssignment(pid)
			if len(asg) > 0 {
				st.hws = asg
				st.slots = make([]workload.Slot, len(asg))
				for i, hw := range asg {
					info := m.topo[hw]
					st.slots[i] = workload.Slot{
						Kind:       info.Kind,
						BusyOnCore: m.busyCore[info.Core],
						Share:      1 / float64(m.loads[hw]),
						FreqScale:  busyFreq,
					}
				}
				st.resp = p.profile.Respond(m.plat, st.slots, workload.Conditions{MemBWGips: m.plat.MemBWGips})
				totalTraffic += st.resp.MemTraffic
			}
		}
		states = append(states, st)
	}

	// Memory-bandwidth arbitration: if aggregate traffic exceeds the
	// platform cap, give every process a proportional share and re-evaluate.
	if totalTraffic > m.plat.MemBWGips {
		for i := range states {
			st := &states[i]
			if st.resp.MemTraffic <= 0 {
				continue
			}
			share := m.plat.MemBWGips * st.resp.MemTraffic / totalTraffic
			st.resp = st.proc.profile.Respond(m.plat, st.slots, workload.Conditions{MemBWGips: share})
		}
	}

	// Advance processes, meter busy time and per-process dynamic energy.
	var finished []ProcID
	for i := range states {
		st := &states[i]
		p := st.proc
		useful := st.resp.UsefulRate * (1 - p.rateTax)
		var busySum float64
		for j, b := range st.resp.Busy {
			hw := st.hws[j]
			m.busyByHW[hw] += b
			info := m.topo[hw]
			kind := m.plat.Kinds[info.Kind]
			p.counters.CPUTimeByKind[info.Kind] += b * dt
			p.counters.DynEnergyJ += kind.ActiveWatts * kind.PowerShare(m.busyCore[info.Core]) *
				b * busyFreq * busyFreq * dt
			busySum += b
		}
		p.counters.ExecutedGI += st.resp.ExecRate * dt
		if p.threads > 0 {
			p.utilEMA.Add(mathx.Clamp(busySum/float64(p.threads), 0, 1))
		}

		adv := useful * dt
		if p.startupLeft > 0 {
			if adv <= p.startupLeft {
				p.startupLeft -= adv
				adv = 0
			} else {
				adv -= p.startupLeft
				p.startupLeft = 0
			}
		}
		if adv > 0 {
			if adv >= p.workLeft {
				frac := p.workLeft / adv // fraction of the quantum actually needed
				p.counters.UsefulGI += p.workLeft
				p.workLeft = 0
				p.done = true
				p.finishedAt = m.now + time.Duration(frac*float64(m.quantum))
				finished = append(finished, p.id)
			} else {
				p.workLeft -= adv
				p.counters.UsefulGI += adv
			}
		}
	}

	// Machine-level energy metering.
	uncore := m.plat.UncoreWatts * dt
	m.energy.UncoreJ += uncore
	m.energy.PackageJ += uncore
	hwIdx := 0
	coreIdx := 0
	for kindIdx, k := range m.plat.Kinds {
		var kindJ float64
		for c := 0; c < k.Count; c++ {
			coreBusy := false
			share := k.PowerShare(m.busyCore[coreIdx])
			var dyn float64
			for s := 0; s < k.SMT; s++ {
				if m.loads[hwIdx] > 0 {
					coreBusy = true
				}
				dyn += k.ActiveWatts * share * m.busyByHW[hwIdx] * busyFreq * busyFreq
				hwIdx++
			}
			base := m.governor.idleWatts(k)
			if coreBusy {
				base = k.IdleWatts
			}
			kindJ += (base + dyn) * dt
			coreIdx++
		}
		m.energy.ByKindJ[kindIdx] += kindJ
		m.energy.PackageJ += kindJ
	}

	m.now += m.quantum

	// Retire finished processes.
	for _, pid := range finished {
		p := m.procs[pid]
		delete(m.procs, pid)
		for i, id := range m.order {
			if id == pid {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
		m.dirty = true
		for _, fn := range p.onExit {
			fn(p)
		}
		for _, fn := range m.onExit {
			fn(p)
		}
	}

	// Fire tickers.
	alive := m.tickers[:0]
	for _, t := range m.tickers {
		for !t.dead && t.next <= m.now {
			t.fn(m.now)
			t.next += t.period
		}
		if !t.dead {
			alive = append(alive, t)
		}
	}
	m.tickers = alive
	return nil
}

// Run advances the machine by d of virtual time.
func (m *Machine) Run(d time.Duration) error {
	end := m.now + d
	for m.now < end {
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntilIdle steps until every process has finished, or errors with
// ErrMachineIdle once the horizon is exceeded.
func (m *Machine) RunUntilIdle(horizon time.Duration) error {
	end := m.now + horizon
	for len(m.order) > 0 {
		if m.now >= end {
			return fmt.Errorf("%w (%v elapsed, %d procs left)", ErrMachineIdle, m.now, len(m.order))
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// place invokes the scheduler and validates its output.
func (m *Machine) place() error {
	views := make([]ProcView, 0, len(m.order))
	for _, pid := range m.order {
		views = append(views, m.procs[pid].view())
	}
	asg := m.sched.Place(m.Topology(), views)
	placement := make(map[ProcID][]HWThread, len(m.order))
	for _, pid := range m.order {
		p := m.procs[pid]
		hws, ok := asg[pid]
		if !ok {
			return fmt.Errorf("sim: scheduler %s ignored process %s", m.sched.Name(), p.name)
		}
		if len(hws) != p.threads {
			return fmt.Errorf("sim: scheduler %s placed %d threads for %s, want %d",
				m.sched.Name(), len(hws), p.name, p.threads)
		}
		allowed := map[HWThread]bool{}
		if p.affinity != nil {
			for _, h := range p.affinity {
				allowed[h] = true
			}
		}
		cp := make([]HWThread, len(hws))
		for i, h := range hws {
			if h < 0 || int(h) >= len(m.topo) {
				return fmt.Errorf("sim: scheduler %s placed %s on bad hw thread %d",
					m.sched.Name(), p.name, h)
			}
			if p.affinity != nil && !allowed[h] {
				return fmt.Errorf("sim: scheduler %s violated affinity of %s (hw %d)",
					m.sched.Name(), p.name, h)
			}
			cp[i] = h
		}
		placement[pid] = cp
	}
	m.placement = placement
	m.dirty = false
	m.lastPlace = m.now
	return nil
}

// effectiveAssignment returns the current placement of a process.
func (m *Machine) effectiveAssignment(pid ProcID) []HWThread {
	return m.placement[pid]
}

// Makespan returns the completion time of the latest-finishing process among
// the given ones, or 0 if none finished.
func Makespan(procs ...*Proc) time.Duration {
	var max time.Duration
	for _, p := range procs {
		if p.Done() && p.FinishedAt() > max {
			max = p.FinishedAt()
		}
	}
	return max
}

// TotalCPUSeconds sums a counters snapshot's busy time across kinds.
func TotalCPUSeconds(c Counters) float64 {
	var s float64
	for _, v := range c.CPUTimeByKind {
		s += v
	}
	return s
}

// ValidEnergy sanity-checks a reading (non-negative, finite).
func ValidEnergy(e EnergyReading) bool {
	vals := append([]float64{e.PackageJ, e.UncoreJ}, e.ByKindJ...)
	for _, v := range vals {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
