// Package sim is a deterministic discrete-time simulator of a heterogeneous
// multicore machine. It substitutes for the paper's physical testbeds
// (Intel Raptor Lake, Odroid XU3-E): an OS-level scheduler places application
// threads on hardware threads each quantum, applications progress according
// to their workload models, and the machine meters energy exactly the way
// RAPL/per-island sensors would — so HARP's monitoring, attribution,
// exploration and allocation code runs unmodified on top.
package sim

import (
	"github.com/harp-rm/harp/internal/platform"
)

// ProcID identifies a running application process within a Machine.
type ProcID int

// HWThread is a global hardware-thread index (0 ≤ id < NumHWThreads).
type HWThread int

// HWInfo describes one hardware thread of the simulated machine.
type HWInfo struct {
	ID      HWThread
	Core    int             // global physical core index
	Kind    platform.KindID // core kind
	Sibling int             // hardware-thread index within the core (0-based)
}

// Governor selects the DVFS/idle-state policy, mirroring the paper's
// frequency-governor ablation (§6.3.3): powersave/schedutil ramp frequencies
// and let idle cores reach deep sleep states, while performance pins maximum
// frequency and keeps idle cores in shallow states.
type Governor int

// Governor values.
const (
	// GovernorPowersave is the Intel default in the evaluation.
	GovernorPowersave Governor = iota + 1
	// GovernorSchedutil is the Odroid default; it behaves like powersave in
	// this model.
	GovernorSchedutil
	// GovernorPerformance pins max frequency and disables deep idle states.
	GovernorPerformance
)

// String implements fmt.Stringer.
func (g Governor) String() string {
	switch g {
	case GovernorPowersave:
		return "powersave"
	case GovernorSchedutil:
		return "schedutil"
	case GovernorPerformance:
		return "performance"
	default:
		return "governor(?)"
	}
}

// busyFreqScale returns the frequency scale of a busy core under g: ramping
// governors lag slightly behind the pinned maximum.
func (g Governor) busyFreqScale() float64 {
	if g == GovernorPerformance {
		return 1.0
	}
	return 0.97
}

// idleWatts returns the idle power of a core under g.
func (g Governor) idleWatts(k platform.CoreKind) float64 {
	if g == GovernorPerformance {
		return k.IdleWatts
	}
	return k.SleepWatts
}

// ProcView is the read-only process information exposed to schedulers. The
// behavioural hints (MemBound, SMTFriendly) stand in for what real systems
// learn from hardware instruction-mix monitoring (e.g. Intel Thread
// Director); they are visible to the *OS-level* scheduler models only, never
// to HARP, which must learn behaviour through measurements.
type ProcView struct {
	ID          ProcID
	Name        string
	Threads     int
	Affinity    []HWThread // nil = unrestricted
	MemBound    float64
	SMTFriendly float64
	// AvgThreadUtil is a PELT-style exponentially smoothed per-thread busy
	// fraction in [0, 1], as Linux EAS would track.
	AvgThreadUtil float64
}

// Scheduler is the OS-level thread placement policy. Place is invoked
// whenever the process set, thread counts or affinities change; it must
// return, for every process, one hardware thread per application thread
// (duplicates allowed — they time-share).
type Scheduler interface {
	Name() string
	Place(topo []HWInfo, procs []ProcView) map[ProcID][]HWThread
}

// Counters is a snapshot of one process's accumulated execution metrics —
// what /proc + perf would report.
type Counters struct {
	ExecutedGI    float64   // retired giga-instructions (IPS integrates this)
	UsefulGI      float64   // useful work completed
	CPUTimeByKind []float64 // busy hardware-thread seconds per core kind
	DynEnergyJ    float64   // ground-truth dynamic energy of this process
}

// EnergyReading is a snapshot of the machine-level energy sensors.
type EnergyReading struct {
	PackageJ float64   // total package energy (RAPL-style)
	ByKindJ  []float64 // per-island energy (Odroid-style sensors)
	UncoreJ  float64
}
