package sim

import (
	"errors"
	"math"
	"testing"
	"time"

	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/workload"
)

// spreadSched is a minimal deterministic scheduler for tests: round-robin
// over the allowed hardware threads.
type spreadSched struct{}

func (spreadSched) Name() string { return "spread" }

func (spreadSched) Place(topo []HWInfo, procs []ProcView) map[ProcID][]HWThread {
	out := make(map[ProcID][]HWThread, len(procs))
	for _, p := range procs {
		allowed := p.Affinity
		if allowed == nil {
			allowed = make([]HWThread, len(topo))
			for i := range topo {
				allowed[i] = topo[i].ID
			}
		}
		asg := make([]HWThread, p.Threads)
		for t := 0; t < p.Threads; t++ {
			asg[t] = allowed[t%len(allowed)]
		}
		out[p.ID] = asg
	}
	return out
}

func newTestMachine(t *testing.T, opts ...Option) *Machine {
	t.Helper()
	m, err := New(platform.RaptorLake(), spreadSched{}, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func computeProfile(work float64) *workload.Profile {
	return &workload.Profile{
		Name:        "compute",
		Adaptivity:  workload.Scalable,
		WorkGI:      work,
		MemBound:    0.05,
		SMTFriendly: 0.8,
		DynamicLoad: true,
		Wait:        workload.Block,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(platform.RaptorLake(), nil); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := New(platform.RaptorLake(), spreadSched{}, WithQuantum(-time.Millisecond)); err == nil {
		t.Error("negative quantum accepted")
	}
	if _, err := New(platform.RaptorLake(), spreadSched{}, WithGovernor(Governor(99))); err == nil {
		t.Error("bogus governor accepted")
	}
	bad := platform.RaptorLake()
	bad.Name = ""
	if _, err := New(bad, spreadSched{}); err == nil {
		t.Error("invalid platform accepted")
	}
}

func TestTopologyShape(t *testing.T) {
	m := newTestMachine(t)
	topo := m.Topology()
	if len(topo) != 32 {
		t.Fatalf("topology size = %d, want 32", len(topo))
	}
	// First two hw threads are siblings on P core 0.
	if topo[0].Core != 0 || topo[1].Core != 0 || topo[0].Sibling != 0 || topo[1].Sibling != 1 {
		t.Errorf("P core siblings wrong: %+v %+v", topo[0], topo[1])
	}
	// hw 16 is the first E thread (8 P cores × 2).
	if topo[16].Kind != 1 || topo[16].Core != 8 {
		t.Errorf("first E thread = %+v, want kind 1 core 8", topo[16])
	}
	if got := len(m.HWThreadsOfKind(1)); got != 16 {
		t.Errorf("E hw threads = %d, want 16", got)
	}
}

func TestSingleAppRunsToCompletion(t *testing.T) {
	m := newTestMachine(t)
	proc, err := m.Start(computeProfile(200), "")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	var exited *Proc
	m.OnProcExit(func(p *Proc) { exited = p })
	if err := m.RunUntilIdle(time.Minute); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if !proc.Done() {
		t.Fatal("process not done")
	}
	if exited != proc {
		t.Error("exit callback not fired with the process")
	}
	if proc.FinishedAt() <= 0 {
		t.Errorf("FinishedAt = %v", proc.FinishedAt())
	}
	c := proc.Counters()
	if math.Abs(c.UsefulGI-200) > 1e-6 {
		t.Errorf("useful work = %g, want 200", c.UsefulGI)
	}
	if c.ExecutedGI < c.UsefulGI-1e-6 {
		t.Errorf("executed %g below useful %g", c.ExecutedGI, c.UsefulGI)
	}
}

// The simulated makespan must match the closed-form steady-state projection
// (within the governor's frequency lag and quantum rounding).
func TestMakespanMatchesClosedForm(t *testing.T) {
	plat := platform.RaptorLake()
	prof := computeProfile(500)
	want := workload.EvaluateVector(plat, prof, plat.Capacity()).TimeSec

	m, err := New(plat, spreadSched{}, WithGovernor(GovernorPerformance))
	if err != nil {
		t.Fatal(err)
	}
	proc, err := m.Start(prof, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunUntilIdle(time.Minute); err != nil {
		t.Fatal(err)
	}
	got := proc.FinishedAt().Seconds()
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("makespan = %.3fs, closed form %.3fs (>5%% off)", got, want)
	}
}

func TestEnergyAccountingConserves(t *testing.T) {
	m := newTestMachine(t)
	p1, err := m.Start(computeProfile(100), "a")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.Start(computeProfile(100), "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunUntilIdle(time.Minute); err != nil {
		t.Fatal(err)
	}
	e := m.Energy()
	if !ValidEnergy(e) {
		t.Fatalf("invalid energy reading %+v", e)
	}
	var kinds float64
	for _, v := range e.ByKindJ {
		kinds += v
	}
	if math.Abs(e.PackageJ-(kinds+e.UncoreJ)) > 1e-6 {
		t.Errorf("package %.3f ≠ kinds %.3f + uncore %.3f", e.PackageJ, kinds, e.UncoreJ)
	}
	dyn := p1.Counters().DynEnergyJ + p2.Counters().DynEnergyJ
	if dyn <= 0 || dyn > e.PackageJ {
		t.Errorf("per-proc dynamic energy %.3f outside (0, package %.3f]", dyn, e.PackageJ)
	}
}

func TestAffinityRestrictsPlacementAndSlowsApp(t *testing.T) {
	mFree := newTestMachine(t)
	free, err := mFree.Start(computeProfile(300), "")
	if err != nil {
		t.Fatal(err)
	}
	if err := mFree.RunUntilIdle(time.Minute); err != nil {
		t.Fatal(err)
	}

	mPinned := newTestMachine(t)
	pinned, err := mPinned.Start(computeProfile(300), "")
	if err != nil {
		t.Fatal(err)
	}
	// Restrict to two E-core hardware threads.
	if err := mPinned.SetAffinity(pinned.ID(), []HWThread{16, 17}); err != nil {
		t.Fatal(err)
	}
	if err := mPinned.RunUntilIdle(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if pinned.FinishedAt() <= 2*free.FinishedAt() {
		t.Errorf("pinned %v not much slower than free %v", pinned.FinishedAt(), free.FinishedAt())
	}
	// CPU time must be exclusively on the E kind.
	c := pinned.Counters()
	if c.CPUTimeByKind[0] != 0 {
		t.Errorf("pinned app consumed %.3fs on P cores", c.CPUTimeByKind[0])
	}
	if c.CPUTimeByKind[1] <= 0 {
		t.Error("pinned app consumed no E-core time")
	}
}

func TestSetAffinityValidation(t *testing.T) {
	m := newTestMachine(t)
	p, err := m.Start(computeProfile(10), "")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetAffinity(p.ID(), []HWThread{}); err == nil {
		t.Error("empty affinity accepted")
	}
	if err := m.SetAffinity(p.ID(), []HWThread{99}); err == nil {
		t.Error("out-of-range hw thread accepted")
	}
	if err := m.SetAffinity(ProcID(999), []HWThread{0}); err == nil {
		t.Error("unknown process accepted")
	}
	if err := m.SetAffinity(p.ID(), nil); err != nil {
		t.Errorf("clearing affinity: %v", err)
	}
}

func TestSetThreadsRules(t *testing.T) {
	m := newTestMachine(t)
	scalable, err := m.Start(computeProfile(10), "s")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetThreads(scalable.ID(), 4); err != nil {
		t.Fatalf("SetThreads: %v", err)
	}
	if got := scalable.Threads(); got != 4 {
		t.Errorf("threads = %d, want 4", got)
	}
	if err := m.SetThreads(scalable.ID(), 0); err == nil {
		t.Error("zero threads accepted")
	}

	static := computeProfile(10)
	static.Name = "static"
	static.Adaptivity = workload.Static
	static.DefaultThreads = 3
	sp, err := m.Start(static, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetThreads(sp.ID(), 2); err == nil {
		t.Error("rescaling a static app accepted")
	}
}

func TestMigrationStallPausesProgress(t *testing.T) {
	m := newTestMachine(t, WithMigrationStall(100*time.Millisecond))
	p, err := m.Start(computeProfile(1e6), "")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	before := p.Counters().UsefulGI
	if before <= 0 {
		t.Fatal("no progress before stall")
	}
	if err := m.SetAffinity(p.ID(), m.HWThreadsOfKind(0)); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(90 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := p.Counters().UsefulGI; got != before {
		t.Errorf("progress during stall: %g → %g", before, got)
	}
	if err := m.Run(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := p.Counters().UsefulGI; got <= before {
		t.Error("no progress after stall expired")
	}
}

func TestTickers(t *testing.T) {
	m := newTestMachine(t)
	if _, err := m.Start(computeProfile(1e6), ""); err != nil {
		t.Fatal(err)
	}
	var fired []time.Duration
	cancel := m.Every(50*time.Millisecond, func(now time.Duration) {
		fired = append(fired, now)
	})
	if err := m.Run(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 {
		t.Fatalf("ticker fired %d times in 200ms at 50ms period, want 4 (%v)", len(fired), fired)
	}
	cancel()
	if err := m.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 {
		t.Errorf("ticker fired after cancel: %v", fired)
	}
}

func TestRunUntilIdleHorizon(t *testing.T) {
	m := newTestMachine(t)
	if _, err := m.Start(computeProfile(1e9), ""); err != nil {
		t.Fatal(err)
	}
	err := m.RunUntilIdle(100 * time.Millisecond)
	if !errors.Is(err, ErrMachineIdle) {
		t.Fatalf("err = %v, want ErrMachineIdle", err)
	}
}

func TestDuplicateInstanceRejected(t *testing.T) {
	m := newTestMachine(t)
	if _, err := m.Start(computeProfile(10), "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(computeProfile(10), "x"); err == nil {
		t.Error("duplicate instance accepted")
	}
}

func TestRateTax(t *testing.T) {
	run := func(tax float64) time.Duration {
		m := newTestMachine(t)
		p, err := m.Start(computeProfile(300), "")
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetRateTax(p.ID(), tax); err != nil {
			t.Fatal(err)
		}
		if err := m.RunUntilIdle(time.Minute); err != nil {
			t.Fatal(err)
		}
		return p.FinishedAt()
	}
	plain := run(0)
	taxed := run(0.10)
	ratio := float64(taxed) / float64(plain)
	if ratio < 1.05 || ratio > 1.25 {
		t.Errorf("10%% tax changed makespan by %.3f×, want ≈1.11×", ratio)
	}

	m := newTestMachine(t)
	p, err := m.Start(computeProfile(10), "")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetRateTax(p.ID(), 1.5); err == nil {
		t.Error("tax ≥ 1 accepted")
	}
}

func TestGovernorIdleEnergy(t *testing.T) {
	run := func(g Governor) float64 {
		m, err := New(platform.RaptorLake(), spreadSched{}, WithGovernor(g))
		if err != nil {
			t.Fatal(err)
		}
		// One small app on two threads: most cores idle.
		prof := computeProfile(50)
		prof.DefaultThreads = 2
		if _, err := m.Start(prof, ""); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(2 * time.Second); err != nil {
			t.Fatal(err)
		}
		return m.Energy().PackageJ
	}
	perf := run(GovernorPerformance)
	save := run(GovernorPowersave)
	if perf <= save {
		t.Errorf("performance governor energy %.1f J not above powersave %.1f J", perf, save)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (time.Duration, float64) {
		m := newTestMachine(t)
		var last *Proc
		for _, name := range []string{"a", "b", "c"} {
			p, err := m.Start(computeProfile(150), name)
			if err != nil {
				t.Fatal(err)
			}
			last = p
		}
		if err := m.RunUntilIdle(time.Minute); err != nil {
			t.Fatal(err)
		}
		return last.FinishedAt(), m.Energy().PackageJ
	}
	t1, e1 := run()
	t2, e2 := run()
	if t1 != t2 || e1 != e2 {
		t.Errorf("non-deterministic: (%v, %g) vs (%v, %g)", t1, e1, t2, e2)
	}
}

func TestGovernorString(t *testing.T) {
	tests := []struct {
		give Governor
		want string
	}{
		{GovernorPowersave, "powersave"},
		{GovernorSchedutil, "schedutil"},
		{GovernorPerformance, "performance"},
		{Governor(0), "governor(?)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("%d: got %q, want %q", int(tt.give), got, tt.want)
		}
	}
}

// Two memory-bound apps must share the platform's bandwidth: each runs
// slower together than alone.
func TestBandwidthArbitrationAcrossApps(t *testing.T) {
	memProfile := func(name string) *workload.Profile {
		return &workload.Profile{
			Name:           name,
			Adaptivity:     workload.Scalable,
			WorkGI:         1e6,
			MemBound:       0.8,
			DynamicLoad:    true,
			Wait:           workload.Block,
			DefaultThreads: 16,
		}
	}
	alone := newTestMachine(t)
	pa, err := alone.Start(memProfile("solo"), "")
	if err != nil {
		t.Fatal(err)
	}
	if err := alone.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	soloRate := pa.Counters().UsefulGI

	shared := newTestMachine(t)
	p1, err := shared.Start(memProfile("m1"), "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shared.Start(memProfile("m2"), ""); err != nil {
		t.Fatal(err)
	}
	if err := shared.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	sharedRate := p1.Counters().UsefulGI

	if sharedRate >= soloRate*0.85 {
		t.Errorf("memory-bound app kept %.0f%% of its solo rate next to a BW-hungry peer; expected contention",
			100*sharedRate/soloRate)
	}
	// And the bandwidth is shared, not destroyed: together they outrun one.
	if sharedRate < soloRate*0.3 {
		t.Errorf("contention collapse: shared rate %.1f vs solo %.1f", sharedRate, soloRate)
	}
}
