package sim

import (
	"time"

	"github.com/harp-rm/harp/internal/mathx"
	"github.com/harp-rm/harp/internal/workload"
)

// Proc is one running application process. All mutation goes through the
// owning Machine (the simulator is single-goroutine by design; determinism
// matters more than parallel simulation here).
type Proc struct {
	id      ProcID
	name    string
	profile *workload.Profile

	threads  int
	affinity []HWThread // nil = all hardware threads

	workLeft    float64 // useful giga-instructions remaining
	startupLeft float64 // serial startup work remaining
	stallUntil  time.Duration
	rateTax     float64 // fraction of useful progress lost to management overhead

	startedAt  time.Duration
	finishedAt time.Duration
	done       bool

	counters Counters
	utilEMA  *mathx.EMA

	onExit []func(*Proc)
}

// ID returns the process identifier.
func (p *Proc) ID() ProcID { return p.id }

// Name returns the instance name (unique within the machine).
func (p *Proc) Name() string { return p.name }

// Profile returns the application's behaviour model.
func (p *Proc) Profile() *workload.Profile { return p.profile }

// Threads returns the current parallelisation degree.
func (p *Proc) Threads() int { return p.threads }

// Affinity returns the allowed hardware threads (nil = unrestricted). The
// returned slice is a copy.
func (p *Proc) Affinity() []HWThread {
	if p.affinity == nil {
		return nil
	}
	out := make([]HWThread, len(p.affinity))
	copy(out, p.affinity)
	return out
}

// Done reports whether the process has finished its work.
func (p *Proc) Done() bool { return p.done }

// StartedAt returns the virtual time the process was started.
func (p *Proc) StartedAt() time.Duration { return p.startedAt }

// FinishedAt returns the virtual completion time (only meaningful once Done).
func (p *Proc) FinishedAt() time.Duration { return p.finishedAt }

// WorkLeft returns the remaining useful work in giga-instructions.
func (p *Proc) WorkLeft() float64 { return p.workLeft }

// Counters returns a snapshot of the accumulated execution metrics.
func (p *Proc) Counters() Counters {
	c := p.counters
	c.CPUTimeByKind = make([]float64, len(p.counters.CPUTimeByKind))
	copy(c.CPUTimeByKind, p.counters.CPUTimeByKind)
	return c
}

// CountersInto copies the accumulated execution metrics into c, reusing its
// CPUTimeByKind slice when it has sufficient capacity. The monitor's 50 ms
// sampling path reads every tracked process on every tick; this variant
// keeps that path allocation-free.
func (p *Proc) CountersInto(c *Counters) {
	byKind := c.CPUTimeByKind
	if cap(byKind) < len(p.counters.CPUTimeByKind) {
		byKind = make([]float64, len(p.counters.CPUTimeByKind))
	}
	byKind = byKind[:len(p.counters.CPUTimeByKind)]
	copy(byKind, p.counters.CPUTimeByKind)
	*c = p.counters
	c.CPUTimeByKind = byKind
}

// view builds the scheduler-visible summary.
func (p *Proc) view() ProcView {
	return ProcView{
		ID:            p.id,
		Name:          p.name,
		Threads:       p.threads,
		Affinity:      p.Affinity(),
		MemBound:      p.profile.MemBound,
		SMTFriendly:   p.profile.SMTFriendly,
		AvgThreadUtil: p.utilEMA.Value(),
	}
}
