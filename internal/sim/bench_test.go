package sim

import (
	"testing"
	"time"

	"github.com/harp-rm/harp/internal/platform"
)

// BenchmarkMachineStep measures one simulation quantum with five running
// applications — the inner loop of every experiment.
func BenchmarkMachineStep(b *testing.B) {
	m, err := New(platform.RaptorLake(), spreadSched{})
	if err != nil {
		b.Fatal(err)
	}
	for i, name := range []string{"a", "b", "c", "d", "e"} {
		prof := computeProfile(1e12)
		prof.MemBound = 0.1 + 0.15*float64(i) // mixed memory intensity
		if _, err := m.Start(prof, name); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineSecond measures simulating one virtual second.
func BenchmarkMachineSecond(b *testing.B) {
	m, err := New(platform.RaptorLake(), spreadSched{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Start(computeProfile(1e12), "a"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Run(time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
