package opoint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Load reads an application description file (JSON) and validates it against
// nothing — call Table.Validate with a platform to check vector shapes.
// Description files are what ships alongside applications or lives under
// /etc/harp (§4.3).
func Load(r io.Reader) (*Table, error) {
	var t Table
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("opoint: decode description: %w", err)
	}
	if t.App == "" {
		return nil, fmt.Errorf("opoint: description without application name")
	}
	return &t, nil
}

// LoadFile reads the description at path.
func LoadFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opoint: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// Save writes the table as indented JSON.
func (t *Table) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("opoint: encode description: %w", err)
	}
	return nil
}

// SaveFile writes the table to path, creating parent directories.
func (t *Table) SaveFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("opoint: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("opoint: %w", err)
	}
	if err := t.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadDir loads every *.json description in a directory, keyed by App name.
// Missing directories yield an empty map — a system without profiles is a
// normal HARP deployment (profiles are then learned online, §5).
func LoadDir(dir string) (map[string]*Table, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return map[string]*Table{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("opoint: %w", err)
	}
	out := make(map[string]*Table)
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		t, err := LoadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("opoint: %s: %w", e.Name(), err)
		}
		out[t.App] = t
	}
	return out, nil
}
