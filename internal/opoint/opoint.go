// Package opoint implements HARP's operating points (§4.1.2): the central
// data structure linking the resource manager and libharp. An operating
// point couples an extended resource vector with the instant non-functional
// characteristics HARP optimises on — utility (IPS or an app-specific
// metric) and power — and carries the energy-utility cost ζ used by the
// allocation problem (Eq. 1, Eq. 2).
package opoint

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/harp-rm/harp/internal/platform"
)

// OperatingPoint is one configuration variant of an application.
type OperatingPoint struct {
	// Vector is the coarse-grained extended resource vector.
	Vector platform.ResourceVector `json:"vector"`
	// Utility is the instant useful-work metric o[v] (IPS by default).
	Utility float64 `json:"utility"`
	// Power is the CPU power o[p] attributed to the application in watts.
	Power float64 `json:"power"`
	// Measured distinguishes measured points from regression-predicted ones
	// during runtime exploration (§5).
	Measured bool `json:"measured,omitempty"`
	// Samples counts the measurements folded into Utility/Power.
	Samples int `json:"samples,omitempty"`
}

// Cost returns the energy-utility cost ζ of the point (Eq. 2):
// ζ = (p / v̂) · (1 / v̂) with v̂ = v / v*, the utility normalised by the
// application's maximum observed utility. Lower is better. A non-positive
// utility yields +Inf (the point does no useful work), as does a
// non-positive power (no real configuration draws zero power; such values
// are measurement or prediction artefacts and must not win the
// minimisation).
func (o OperatingPoint) Cost(maxUtility float64) float64 {
	if o.Utility <= 0 || maxUtility <= 0 || o.Power <= 0 {
		return math.Inf(1)
	}
	vhat := o.Utility / maxUtility
	return o.Power / (vhat * vhat)
}

// Table is an application's set of operating points.
//
// The table memoises derived data (the runtime Pareto front, v*, validation)
// because the allocator re-derives them on every reallocation — the dominant
// cost of a simulated HARP run. All mutations must go through Upsert/Sort, or
// call Invalidate after modifying Points directly; see DESIGN.md
// ("Pareto-cache invariant"). Tables must not be mutated while another
// goroutine reads them, but concurrent read-only use (including ParetoPoints)
// is safe.
type Table struct {
	// App names the application the table belongs to.
	App string `json:"app"`
	// Platform names the hardware the characteristics were collected on.
	Platform string `json:"platform"`
	// Points holds the operating points in no particular order.
	Points []OperatingPoint `json:"points"`

	// mu guards the memoised derived state below.
	mu sync.Mutex
	// id is the table's process-unique identity, assigned lazily by ID().
	id uint64
	// version counts mutations; derived caches are keyed on it.
	version uint64
	// front is the cached runtime Pareto front; frontLen detects direct
	// appends to Points that bypassed Upsert/Invalidate.
	front    []OperatingPoint
	frontOK  bool
	frontLen int
	// maxUtility caches MaxUtility.
	maxUtility    float64
	maxUtilityOK  bool
	maxUtilityLen int
	// validatedFor remembers the platform name the table last validated
	// cleanly against.
	validatedFor string
	validatedOK  bool
	validatedLen int
}

// Invalidate drops every memoised derived value. Callers that modify Points
// directly (rather than through Upsert) must call it before the next
// ParetoPoints/MaxUtility/Validate, otherwise stale caches may be served.
// Length changes are detected automatically; in-place edits are not.
func (t *Table) Invalidate() {
	t.mu.Lock()
	t.bumpLocked()
	t.mu.Unlock()
}

// bumpLocked invalidates all caches; t.mu must be held.
func (t *Table) bumpLocked() {
	t.version++
	t.frontOK = false
	t.maxUtilityOK = false
	t.validatedOK = false
}

// Version returns the table's mutation counter — callers (e.g. the runtime
// explorer) use it to memoise their own derived structures.
func (t *Table) Version() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version
}

// tableIDs hands out process-unique table identities; see ID.
var tableIDs atomic.Uint64

// ID returns a process-unique identity for the table, assigned on first
// call. Derived caches outside the table (the allocator's fingerprint memo,
// the sharded allocator's footprint memo) key on it instead of the pointer:
// a *Table key can be poisoned when a freed table's address is reused by a
// new table at the same version — clones in particular all restart at
// version 0, so under session churn (predicted tables being rebuilt and
// dropped every epoch) a pointer key validated only by version may serve a
// stale entry for a different table. Identities are never reused, so an ID
// hit is always the same table. Clones do not inherit the ID.
func (t *Table) ID() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.id == 0 {
		t.id = tableIDs.Add(1)
	}
	return t.id
}

// Validate checks the table against a platform description. A clean result
// is memoised per platform name until the table changes.
func (t *Table) Validate(p *platform.Platform) error {
	if t.App == "" {
		return errors.New("opoint: table without application name")
	}
	t.mu.Lock()
	if t.validatedOK && t.validatedFor == p.Name && t.validatedLen == len(t.Points) {
		t.mu.Unlock()
		return nil
	}
	t.mu.Unlock()
	for i, op := range t.Points {
		if err := op.Vector.Validate(p); err != nil {
			return fmt.Errorf("opoint: %s point %d: %w", t.App, i, err)
		}
		if math.IsNaN(op.Utility) || math.IsNaN(op.Power) || op.Power < 0 {
			return fmt.Errorf("opoint: %s point %d: bad characteristics (v=%g, p=%g)",
				t.App, i, op.Utility, op.Power)
		}
	}
	t.mu.Lock()
	t.validatedOK = true
	t.validatedFor = p.Name
	t.validatedLen = len(t.Points)
	t.mu.Unlock()
	return nil
}

// MaxUtility returns v*, the maximum utility across the table (0 if empty).
func (t *Table) MaxUtility() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.maxUtilityOK && t.maxUtilityLen == len(t.Points) {
		return t.maxUtility
	}
	var max float64
	for _, op := range t.Points {
		if op.Utility > max {
			max = op.Utility
		}
	}
	t.maxUtility = max
	t.maxUtilityOK = true
	t.maxUtilityLen = len(t.Points)
	return max
}

// Lookup returns the point with the given resource vector, if present.
func (t *Table) Lookup(rv platform.ResourceVector) (OperatingPoint, bool) {
	for _, op := range t.Points {
		if op.Vector.Equal(rv) {
			return op, true
		}
	}
	return OperatingPoint{}, false
}

// Upsert inserts the point or replaces an existing one with the same vector.
func (t *Table) Upsert(op OperatingPoint) {
	defer t.Invalidate()
	for i := range t.Points {
		if t.Points[i].Vector.Equal(op.Vector) {
			t.Points[i] = op
			return
		}
	}
	t.Points = append(t.Points, op)
}

// MeasuredCount returns the number of measured (not predicted) points.
func (t *Table) MeasuredCount() int {
	var n int
	for _, op := range t.Points {
		if op.Measured {
			n++
		}
	}
	return n
}

// Sort orders points deterministically by vector key. Order matters to the
// memoised Pareto front (duplicate-objective ties keep the earliest point),
// so sorting invalidates the caches.
func (t *Table) Sort() {
	sort.Slice(t.Points, func(i, j int) bool {
		return t.Points[i].Vector.Key() < t.Points[j].Vector.Key()
	})
	t.Invalidate()
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := &Table{App: t.App, Platform: t.Platform, Points: make([]OperatingPoint, len(t.Points))}
	for i, op := range t.Points {
		op.Vector = op.Vector.Clone()
		out.Points[i] = op
	}
	return out
}

// Pareto returns the subset of xs that is Pareto-optimal under the given
// objectives, all minimised. A point is kept unless another point is no
// worse in every objective and strictly better in at least one; duplicated
// objective rows keep a single representative.
//
// Implementation: points are processed in lexicographic objective order. Any
// dominator of a point precedes it in that order, and by transitivity a
// non-dominated dominator exists on the running front, so each point only
// needs to be checked against the (small) front built so far. This is the
// allocator's hot path — tables can hold hundreds of points per application.
func Pareto[T any](xs []T, objectives func(T) []float64) []T {
	if len(xs) == 0 {
		return nil
	}
	type entry struct {
		obj []float64
		idx int
	}
	entries := make([]entry, len(xs))
	for i, x := range xs {
		entries[i] = entry{obj: objectives(x), idx: i}
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].obj, entries[j].obj
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return entries[i].idx < entries[j].idx
	})

	var front []entry
	for _, e := range entries {
		dominated := false
		for _, f := range front {
			if d := dominanceOf(f.obj, e.obj); d == strictlyDominates || d == equalObjectives {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, e)
		}
	}
	out := make([]T, len(front))
	for i, f := range front {
		out[i] = xs[f.idx]
	}
	return out
}

type dominance int

const (
	noDominance dominance = iota
	strictlyDominates
	equalObjectives
)

// dominanceOf reports how a relates to b for minimisation objectives.
func dominanceOf(a, b []float64) dominance {
	allLEQ := true
	anyLT := false
	allEQ := true
	for k := range a {
		if a[k] > b[k] {
			allLEQ = false
		}
		if a[k] < b[k] {
			anyLT = true
		}
		if a[k] != b[k] {
			allEQ = false
		}
	}
	switch {
	case allLEQ && anyLT:
		return strictlyDominates
	case allEQ:
		return equalObjectives
	default:
		return noDominance
	}
}

// RuntimeObjectives is the objective extractor used by the runtime allocator
// (§4.2.2): minimise power, maximise utility (negated), and minimise the
// per-kind core footprint.
func RuntimeObjectives(op OperatingPoint) []float64 {
	demand := op.Vector.CoreDemand()
	objs := make([]float64, 0, 2+len(demand))
	objs = append(objs, -op.Utility, op.Power)
	for _, d := range demand {
		objs = append(objs, float64(d))
	}
	return objs
}

// ParetoPoints filters the table down to its runtime Pareto front. The front
// is memoised until the table changes; callers must treat the returned slice
// as read-only (the allocator and harpctl only iterate it).
func (t *Table) ParetoPoints() []OperatingPoint {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.frontOK && t.frontLen == len(t.Points) {
		return t.front
	}
	t.front = Pareto(t.Points, RuntimeObjectives)
	t.frontOK = true
	t.frontLen = len(t.Points)
	return t.front
}
