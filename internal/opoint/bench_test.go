package opoint

import (
	"math/rand"
	"testing"

	"github.com/harp-rm/harp/internal/platform"
)

// benchTable builds a full-size (764-point) table with plausible
// characteristics.
func benchTable(b *testing.B) *Table {
	b.Helper()
	plat := platform.RaptorLake()
	rng := rand.New(rand.NewSource(1))
	tbl := &Table{App: "bench", Platform: plat.Name}
	for _, rv := range platform.EnumerateVectors(plat, 0) {
		threads := float64(rv.Threads())
		tbl.Points = append(tbl.Points, OperatingPoint{
			Vector:  rv,
			Utility: threads * (8 + rng.Float64()),
			Power:   threads * (3 + rng.Float64()),
		})
	}
	return tbl
}

// BenchmarkParetoFilter measures the allocator's hot path: 4-objective
// Pareto filtering of a full operating-point table.
func BenchmarkParetoFilter(b *testing.B) {
	tbl := benchTable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if front := tbl.ParetoPoints(); len(front) == 0 {
			b.Fatal("empty front")
		}
	}
}

// BenchmarkTableLookup measures point lookup by resource vector.
func BenchmarkTableLookup(b *testing.B) {
	tbl := benchTable(b)
	needle := tbl.Points[len(tbl.Points)/2].Vector
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tbl.Lookup(needle); !ok {
			b.Fatal("lookup missed")
		}
	}
}

// BenchmarkCost measures the energy-utility cost evaluation (Eq. 2).
func BenchmarkCost(b *testing.B) {
	tbl := benchTable(b)
	vstar := tbl.MaxUtility()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		for _, op := range tbl.Points {
			sum += op.Cost(vstar)
		}
		if sum <= 0 {
			b.Fatal("degenerate costs")
		}
	}
}
