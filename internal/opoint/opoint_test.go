package opoint

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"github.com/harp-rm/harp/internal/platform"
)

func vec(t *testing.T, p *platform.Platform, perKind ...[]int) platform.ResourceVector {
	t.Helper()
	rv, err := platform.VectorOf(p, perKind...)
	if err != nil {
		t.Fatal(err)
	}
	return rv
}

func TestCostFollowsEq2(t *testing.T) {
	p := platform.RaptorLake()
	op := OperatingPoint{Vector: vec(t, p, []int{1, 0}, []int{0}), Utility: 50, Power: 10}
	// v* = 100 → v̂ = 0.5 → ζ = 10 / 0.25 = 40.
	if got := op.Cost(100); math.Abs(got-40) > 1e-9 {
		t.Errorf("Cost = %g, want 40", got)
	}
	// At maximum utility, ζ = power.
	if got := op.Cost(50); math.Abs(got-10) > 1e-9 {
		t.Errorf("Cost at v* = %g, want 10", got)
	}
}

func TestCostDegenerate(t *testing.T) {
	op := OperatingPoint{Utility: 0, Power: 10}
	if got := op.Cost(100); !math.IsInf(got, 1) {
		t.Errorf("Cost with zero utility = %g, want +Inf", got)
	}
	op.Utility = 10
	if got := op.Cost(0); !math.IsInf(got, 1) {
		t.Errorf("Cost with zero v* = %g, want +Inf", got)
	}
}

// Lower utility must never yield a lower cost at equal power, and higher
// power must never yield a lower cost at equal utility.
func TestCostMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vstar := 1 + r.Float64()*99
		u := r.Float64() * vstar
		pw := r.Float64() * 100
		a := OperatingPoint{Utility: u, Power: pw}
		b := OperatingPoint{Utility: u * 0.9, Power: pw}
		c := OperatingPoint{Utility: u, Power: pw * 1.1}
		if u <= 0 || pw <= 0 {
			return true
		}
		return a.Cost(vstar) <= b.Cost(vstar) && a.Cost(vstar) <= c.Cost(vstar)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableLookupUpsert(t *testing.T) {
	p := platform.RaptorLake()
	tbl := &Table{App: "ep.C", Platform: p.Name}
	v1 := vec(t, p, []int{2, 0}, []int{0})

	if _, ok := tbl.Lookup(v1); ok {
		t.Fatal("Lookup on empty table succeeded")
	}
	tbl.Upsert(OperatingPoint{Vector: v1, Utility: 10, Power: 5})
	tbl.Upsert(OperatingPoint{Vector: vec(t, p, []int{0, 0}, []int{4}), Utility: 8, Power: 3})
	if len(tbl.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(tbl.Points))
	}
	// Upsert with the same vector replaces.
	tbl.Upsert(OperatingPoint{Vector: v1, Utility: 12, Power: 6, Measured: true})
	if len(tbl.Points) != 2 {
		t.Fatalf("points after replace = %d, want 2", len(tbl.Points))
	}
	got, ok := tbl.Lookup(v1)
	if !ok || got.Utility != 12 || !got.Measured {
		t.Fatalf("Lookup after replace = (%+v, %v)", got, ok)
	}
	if got := tbl.MeasuredCount(); got != 1 {
		t.Errorf("MeasuredCount = %d, want 1", got)
	}
	if got := tbl.MaxUtility(); got != 12 {
		t.Errorf("MaxUtility = %g, want 12", got)
	}
}

func TestTableValidate(t *testing.T) {
	p := platform.RaptorLake()
	good := &Table{App: "x", Points: []OperatingPoint{
		{Vector: vec(t, p, []int{1, 0}, []int{0}), Utility: 1, Power: 1},
	}}
	if err := good.Validate(p); err != nil {
		t.Fatalf("Validate(good): %v", err)
	}
	noName := &Table{Points: good.Points}
	if err := noName.Validate(p); err == nil {
		t.Error("table without app name accepted")
	}
	badPower := good.Clone()
	badPower.Points[0].Power = -1
	if err := badPower.Validate(p); err == nil {
		t.Error("negative power accepted")
	}
	wrongShape := &Table{App: "x", Points: []OperatingPoint{
		{Vector: platform.NewResourceVector(platform.OdroidXU3()), Utility: 1, Power: 1},
	}}
	if err := wrongShape.Validate(p); err == nil {
		t.Error("cross-platform vector accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := platform.RaptorLake()
	tbl := &Table{App: "x", Points: []OperatingPoint{
		{Vector: vec(t, p, []int{1, 0}, []int{0}), Utility: 1, Power: 1},
	}}
	cp := tbl.Clone()
	cp.Points[0].Vector.Counts[0][0] = 7
	cp.Points[0].Utility = 99
	if tbl.Points[0].Vector.Counts[0][0] == 7 || tbl.Points[0].Utility == 99 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestSortDeterministic(t *testing.T) {
	p := platform.RaptorLake()
	tbl := &Table{App: "x"}
	tbl.Upsert(OperatingPoint{Vector: vec(t, p, []int{2, 0}, []int{0})})
	tbl.Upsert(OperatingPoint{Vector: vec(t, p, []int{0, 0}, []int{3})})
	tbl.Upsert(OperatingPoint{Vector: vec(t, p, []int{1, 1}, []int{2})})
	tbl.Sort()
	keys := make([]string, len(tbl.Points))
	for i, op := range tbl.Points {
		keys[i] = op.Vector.Key()
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("not sorted: %v", keys)
		}
	}
}

func TestParetoSimple(t *testing.T) {
	type pt struct{ a, b float64 }
	pts := []pt{
		{1, 5}, // front
		{2, 4}, // front
		{3, 3}, // front
		{3, 4}, // dominated by {3,3} and {2,4}
		{5, 5}, // dominated
	}
	front := Pareto(pts, func(p pt) []float64 { return []float64{p.a, p.b} })
	if len(front) != 3 {
		t.Fatalf("front size = %d, want 3: %v", len(front), front)
	}
}

func TestParetoKeepsOneOfDuplicates(t *testing.T) {
	type pt struct{ a float64 }
	pts := []pt{{1}, {1}, {2}}
	front := Pareto(pts, func(p pt) []float64 { return []float64{p.a} })
	if len(front) != 1 || front[0].a != 1 {
		t.Fatalf("front = %v, want exactly one {1}", front)
	}
}

func TestParetoEmpty(t *testing.T) {
	if got := Pareto(nil, func(int) []float64 { return nil }); got != nil {
		t.Fatalf("Pareto(nil) = %v, want nil", got)
	}
}

// Property: every non-front point is dominated by some front point, and no
// front point dominates another.
func TestParetoProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{float64(r.Intn(6)), float64(r.Intn(6)), float64(r.Intn(6))}
		}
		front := Pareto(pts, func(p []float64) []float64 { return p })
		if len(front) == 0 {
			return false
		}
		dominates := func(a, b []float64) bool {
			return dominanceOf(a, b) == strictlyDominates
		}
		for _, fp := range front {
			for _, fq := range front {
				if dominates(fp, fq) {
					return false
				}
			}
		}
		for _, p := range pts {
			onFront := false
			for _, fp := range front {
				if &fp == &p {
					onFront = true
				}
			}
			if onFront {
				continue
			}
			covered := false
			for _, fp := range front {
				if dominates(fp, p) || dominanceOf(fp, p) == equalObjectives {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeObjectivesPareto(t *testing.T) {
	p := platform.RaptorLake()
	tbl := &Table{App: "x"}
	// Strictly better point: more utility, less power, fewer cores.
	tbl.Upsert(OperatingPoint{Vector: vec(t, p, []int{1, 0}, []int{0}), Utility: 10, Power: 5})
	// Dominated: fewer utility, more power, more cores.
	tbl.Upsert(OperatingPoint{Vector: vec(t, p, []int{2, 0}, []int{0}), Utility: 8, Power: 9})
	// Incomparable: less utility but fewer resources/power.
	tbl.Upsert(OperatingPoint{Vector: vec(t, p, []int{0, 0}, []int{1}), Utility: 4, Power: 1})

	front := tbl.ParetoPoints()
	if len(front) != 2 {
		t.Fatalf("front size = %d, want 2", len(front))
	}
	for _, op := range front {
		if op.Utility == 8 {
			t.Error("dominated point survived")
		}
	}
}

func TestDescriptionFileRoundTrip(t *testing.T) {
	p := platform.RaptorLake()
	tbl := &Table{App: "ep.C", Platform: p.Name}
	tbl.Upsert(OperatingPoint{Vector: vec(t, p, []int{1, 2}, []int{4}), Utility: 123.4, Power: 56.7, Measured: true, Samples: 20})

	var buf bytes.Buffer
	if err := tbl.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if err := got.Validate(p); err != nil {
		t.Fatalf("Validate after round trip: %v", err)
	}
	op, ok := got.Lookup(tbl.Points[0].Vector)
	if !ok || op.Utility != 123.4 || op.Power != 56.7 || !op.Measured || op.Samples != 20 {
		t.Fatalf("round trip point = %+v", op)
	}
}

func TestLoadRejectsBadDescriptions(t *testing.T) {
	for _, give := range []string{"nope", `{"bogus": 1}`, `{"points": []}`} {
		if _, err := Load(strings.NewReader(give)); err == nil {
			t.Errorf("Load(%q) accepted", give)
		}
	}
}

func TestLoadDir(t *testing.T) {
	p := platform.RaptorLake()
	dir := t.TempDir()
	a := &Table{App: "a", Platform: p.Name}
	a.Upsert(OperatingPoint{Vector: vec(t, p, []int{1, 0}, []int{0}), Utility: 1, Power: 1})
	if err := a.SaveFile(filepath.Join(dir, "a.json")); err != nil {
		t.Fatal(err)
	}
	b := &Table{App: "b", Platform: p.Name}
	if err := b.SaveFile(filepath.Join(dir, "b.json")); err != nil {
		t.Fatal(err)
	}

	got, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(got) != 2 || got["a"] == nil || got["b"] == nil {
		t.Fatalf("LoadDir = %v", got)
	}

	empty, err := LoadDir(filepath.Join(dir, "missing"))
	if err != nil || len(empty) != 0 {
		t.Fatalf("LoadDir(missing) = (%v, %v), want empty map", empty, err)
	}
}
