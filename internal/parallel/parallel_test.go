package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResults(t *testing.T) {
	for _, p := range []int{0, 1, 2, 7, 64} {
		got, err := Map(p, 20, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if len(got) != 20 {
			t.Fatalf("parallelism %d: got %d results", p, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallelism %d: result[%d] = %d, want %d", p, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("got %v, %v; want nil, nil", got, err)
	}
}

func TestMapSequentialMatchesParallel(t *testing.T) {
	fn := func(i int) (string, error) { return fmt.Sprintf("unit-%03d", i), nil }
	seq, err := Map(1, 50, fn)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Map(8, 50, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("result[%d]: sequential %q != parallel %q", i, seq[i], par[i])
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	errAt := func(bad int) error {
		_, err := Map(4, 32, func(i int) (int, error) {
			if i == bad || i == bad+5 {
				return 0, fmt.Errorf("unit %d failed", i)
			}
			return i, nil
		})
		return err
	}
	// Run a few times: scheduling varies, the reported error must not.
	for trial := 0; trial < 10; trial++ {
		err := errAt(3)
		if err == nil {
			t.Fatal("expected error")
		}
		if got := err.Error(); got != "unit 3 failed" {
			t.Fatalf("trial %d: got %q, want the lowest-index failure", trial, got)
		}
	}
}

func TestMapSequentialStopsAtFirstError(t *testing.T) {
	var calls atomic.Int64
	sentinel := errors.New("boom")
	_, err := Map(1, 100, func(i int) (int, error) {
		calls.Add(1)
		if i == 2 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("sequential mode made %d calls after failing at index 2", calls.Load())
	}
}

func TestMapCancelsAfterError(t *testing.T) {
	// With parallelism 2 and an immediate failure, far fewer than n units
	// should run: workers stop picking up new indices once failed is set.
	var calls atomic.Int64
	_, err := Map(2, 10_000, func(i int) (int, error) {
		calls.Add(1)
		return 0, errors.New("fail fast")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if c := calls.Load(); c > 1000 {
		t.Fatalf("ran %d units after the first failure; early cancel is not working", c)
	}
}

func TestMapRecoversPanic(t *testing.T) {
	_, err := Map(4, 8, func(i int) (int, error) {
		if i == 5 {
			panic("kaboom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected panic to surface as error")
	}
	if !strings.Contains(err.Error(), "worker 5 panicked") || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("unhelpful panic error: %v", err)
	}
}

func TestMapPanicSequential(t *testing.T) {
	_, err := Map(1, 3, func(i int) (int, error) {
		panic("inline")
	})
	if err == nil || !strings.Contains(err.Error(), "worker 0 panicked") {
		t.Fatalf("got %v", err)
	}
}

func TestRun(t *testing.T) {
	var sum atomic.Int64
	if err := Run(4, 100, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d, want 4950", sum.Load())
	}
}

func TestDefaultParallelism(t *testing.T) {
	if got := DefaultParallelism(0); got != runtime.NumCPU() {
		t.Fatalf("DefaultParallelism(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := DefaultParallelism(-3); got != runtime.NumCPU() {
		t.Fatalf("DefaultParallelism(-3) = %d, want NumCPU", got)
	}
	if got := DefaultParallelism(5); got != 5 {
		t.Fatalf("DefaultParallelism(5) = %d, want 5", got)
	}
}

func TestMapHighContention(t *testing.T) {
	// Many more workers than units and vice versa; run under -race to check
	// the index hand-out and result writes.
	for _, c := range []struct{ p, n int }{{16, 4}, {4, 4096}, {3, 1}} {
		got, err := Map(c.p, c.n, func(i int) (int, error) { return i + 1, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i+1 {
				t.Fatalf("p=%d n=%d: result[%d] = %d", c.p, c.n, i, v)
			}
		}
	}
}
