// Package parallel provides the bounded worker pool the experiment harness
// fans independent simulation units out across. The evaluation (Figs. 1, 5-8
// and the ablations) is a large set of scenario × policy × seed runs, each
// owning its own machine and RNG seed — embarrassingly parallel with a
// deterministic merge, the same fan-out shape middleware evaluations such as
// MARS and E-Mapper use for design-space sweeps.
//
// The contract that keeps parallel results bit-identical to sequential ones:
// the worker function for index i must depend only on i (and read-only shared
// state), and results are collected positionally, so neither the parallelism
// level nor scheduling order can influence what the caller observes.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultParallelism resolves a Parallelism knob: values <= 0 mean "one
// worker per CPU", 1 means strictly sequential, anything else is taken
// as-is.
func DefaultParallelism(p int) int {
	if p <= 0 {
		return runtime.NumCPU()
	}
	return p
}

// Map runs fn(0..n-1) across at most parallelism workers and returns the
// results in index order. Parallelism <= 0 defaults to NumCPU; 1 runs inline
// on the calling goroutine with no pool machinery at all (the sequential
// fallback).
//
// A panic inside fn is recovered and reported as an error rather than
// crashing the sibling workers. On the first failure the remaining indices
// are cancelled (workers stop picking up new work; in-flight calls finish).
// When several indices fail, the error of the lowest index is returned so
// the reported failure does not depend on scheduling.
func Map[T any](parallelism, n int, fn func(int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	parallelism = DefaultParallelism(parallelism)
	if parallelism > n {
		parallelism = n
	}
	if parallelism == 1 {
		for i := 0; i < n; i++ {
			v, err := call(i, fn)
			if err != nil {
				return nil, err
			}
			results[i] = v
		}
		return results, nil
	}

	var (
		next    atomic.Int64 // next index to hand out
		failed  atomic.Bool  // set on first error; stops new work
		mu      sync.Mutex
		firstIx = n // lowest failing index seen so far
		firstEr error
		wg      sync.WaitGroup
	)
	worker := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1)) - 1
			if i >= n || failed.Load() {
				return
			}
			v, err := call(i, fn)
			if err != nil {
				failed.Store(true)
				mu.Lock()
				if i < firstIx {
					firstIx, firstEr = i, err
				}
				mu.Unlock()
				return
			}
			results[i] = v
		}
	}
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go worker()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return results, nil
}

// Run is Map for functions without a result value.
func Run(parallelism, n int, fn func(int) error) error {
	_, err := Map(parallelism, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// call invokes fn(i), converting a panic into an error that names the index.
func call[T any](i int, fn func(int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("parallel: worker %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}
