package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

// --- Phase spans ---

// TestSpanEmitsMatchedPair: a BeginPhase/End pair lands as matched B/E
// events on the rm track and observes the enclosed duration into the
// histogram.
func TestSpanEmitsMatchedPair(t *testing.T) {
	tr := NewTracer(16)
	var now time.Duration
	tr.SetClock(func() time.Duration { return now })
	h := NewRegistry().Histogram("x_seconds", "", LatencyBuckets)

	now = 10 * time.Millisecond
	sp := tr.BeginPhase(PhaseSolve, h)
	now = 14 * time.Millisecond
	sp.End()

	evs := tr.Tail(0)
	if len(evs) != 2 || evs[0].Kind != EvSpanBegin || evs[1].Kind != EvSpanEnd {
		t.Fatalf("events = %+v, want one B/E pair", evs)
	}
	if evs[0].Stage != PhaseSolve || evs[1].Stage != PhaseSolve {
		t.Errorf("span phase = %q/%q, want %q", evs[0].Stage, evs[1].Stage, PhaseSolve)
	}
	if got := h.Sum(); math.Abs(got-0.004) > 1e-12 {
		t.Errorf("histogram observed %.6fs, want the 4ms span", got)
	}
}

// TestSpanNestingInChromeTrace renders nested spans and checks strict LIFO
// B/E matching per track — the property Perfetto needs to draw them as
// nested slices.
func TestSpanNestingInChromeTrace(t *testing.T) {
	tr := NewTracer(64)
	var now time.Duration
	tr.SetClock(func() time.Duration { return now })

	epoch := tr.BeginPhase(PhaseEpoch, nil)
	now += time.Millisecond
	solve := tr.BeginPhase(PhaseSolve, nil)
	now += time.Millisecond
	solve.End()
	repair := tr.BeginPhase(PhaseRepair, nil)
	now += time.Millisecond
	repair.End()
	now += time.Millisecond
	epoch.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	var stack []string
	var lastTs float64
	for _, ev := range evs {
		switch ev["ph"] {
		case "B":
			if ts := ev["ts"].(float64); ts < lastTs {
				t.Fatalf("timestamps regressed: %v after %v", ts, lastTs)
			} else {
				lastTs = ts
			}
			stack = append(stack, ev["name"].(string))
		case "E":
			if len(stack) == 0 {
				t.Fatalf("E %q without a matching B", ev["name"])
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if top != ev["name"].(string) {
				t.Fatalf("E %q closes B %q — spans are not LIFO", ev["name"], top)
			}
		}
	}
	if len(stack) != 0 {
		t.Fatalf("unclosed spans at end of trace: %v", stack)
	}
}

// TestSpanOnNilTracerIsFree: phase spans on a nil tracer are complete
// no-ops and never touch the histogram.
func TestSpanOnNilTracerIsFree(t *testing.T) {
	var tr *Tracer
	h := NewRegistry().Histogram("x_seconds", "", LatencyBuckets)
	sp := tr.BeginPhase(PhaseEpoch, h)
	sp.End()
	if h.Count() != 0 {
		t.Error("nil-tracer span observed into the histogram")
	}
	if n := testing.AllocsPerRun(100, func() {
		s := tr.BeginPhase(PhaseSolve, h)
		s.End()
	}); n != 0 {
		t.Errorf("nil-tracer span allocates %.1f/op, want 0", n)
	}
}

// --- Energy ledger ---

// manualLedger returns a ledger on a hand-cranked clock.
func manualLedger() (*EnergyLedger, *time.Duration) {
	led := NewEnergyLedger()
	now := new(time.Duration)
	led.SetClock(func() time.Duration { return *now })
	return led, now
}

// TestEnergyTrapezoid pins the integration rule: dJ = dt·(p0+p1)/2, and
// the first sample only anchors.
func TestEnergyTrapezoid(t *testing.T) {
	led, now := manualLedger()
	led.Observe("a", 10, 20)
	if tot := led.Totals(); tot.Joules != 0 {
		t.Fatalf("first sample integrated %.3f J, want 0 (anchor only)", tot.Joules)
	}
	*now = time.Second
	led.Observe("a", 30, 40)
	tot := led.Totals()
	if math.Abs(tot.Joules-30) > 1e-12 {
		t.Errorf("joules = %.6f, want 1s·(20+40)/2 = 30", tot.Joules)
	}
	if math.Abs(tot.UtilityS-20) > 1e-12 {
		t.Errorf("utility-seconds = %.6f, want 1s·(10+30)/2 = 20", tot.UtilityS)
	}
	if tot.PowerW != 40 {
		t.Errorf("fleet power = %.1f W, want the last sample's 40", tot.PowerW)
	}
}

// TestEnergyConservation: the per-session rows plus the retired
// accumulator account for every fleet joule exactly — including across
// EndSession, which folds the session into the retired bucket.
func TestEnergyConservation(t *testing.T) {
	led, now := manualLedger()
	for i := 0; i < 50; i++ {
		*now += 100 * time.Millisecond
		led.Observe("a", 10, float64(20+i%5))
		led.Observe("b", 5, float64(30+i%3))
	}
	check := func(stage string) {
		t.Helper()
		tot := led.Totals()
		var sum float64
		for _, se := range led.Sessions() {
			sum += se.Joules
		}
		if diff := sum + tot.RetiredJoules - tot.Joules; math.Abs(diff) > 1e-9 {
			t.Fatalf("%s: sessions %.12f + retired %.12f != fleet %.12f",
				stage, sum, tot.RetiredJoules, tot.Joules)
		}
	}
	check("both live")
	before := led.Totals()
	led.EndSession("a")
	check("a retired")
	if led.Totals().Joules != before.Joules {
		t.Error("EndSession changed the fleet total")
	}
	if len(led.Sessions()) != 1 {
		t.Errorf("sessions after EndSession = %d, want 1", len(led.Sessions()))
	}
	led.EndSession("b")
	check("all retired")
}

// TestEnergyBudgetOverrun: time only accrues while the measured fleet
// power exceeds a positive budget.
func TestEnergyBudgetOverrun(t *testing.T) {
	led, now := manualLedger()
	led.Observe("a", 1, 40)
	led.SetBudget(50) // under budget: nothing accrues
	*now = time.Second
	led.Observe("a", 1, 40)
	if tot := led.Totals(); tot.OverrunSec != 0 {
		t.Fatalf("overrun %.3fs while under budget", tot.OverrunSec)
	}
	led.SetBudget(30) // 40 W > 30 W: the clock starts
	*now = 3 * time.Second
	led.Observe("a", 1, 40)
	if tot := led.Totals(); math.Abs(tot.OverrunSec-2) > 1e-12 {
		t.Errorf("overrun = %.3fs, want the 2s spent over budget", tot.OverrunSec)
	}
}

// TestEnergyExportSeedRoundTrip: Seed restores the accumulators from an
// Export and re-anchors integration — the next sample adds no energy for
// the gap.
func TestEnergyExportSeedRoundTrip(t *testing.T) {
	led, now := manualLedger()
	led.Observe("a", 10, 20)
	*now = time.Second
	led.Observe("a", 10, 20)
	st := led.Export()

	led2, now2 := manualLedger()
	led2.Seed(st)
	tot := led2.Totals()
	if math.Abs(tot.Joules-20) > 1e-12 {
		t.Fatalf("seeded joules = %.6f, want 20", tot.Joules)
	}
	*now2 = time.Hour // a long dark gap
	led2.Observe("a", 10, 20)
	if got := led2.Totals().Joules; math.Abs(got-20) > 1e-12 {
		t.Errorf("joules after re-anchor = %.6f, want 20 (no energy invented for downtime)", got)
	}
	*now2 += time.Second
	led2.Observe("a", 10, 20)
	if got := led2.Totals().Joules; math.Abs(got-40) > 1e-12 {
		t.Errorf("joules after resumed integration = %.6f, want 40", got)
	}
}

// TestEnergyLedgerNilIsSafe: every method is a no-op (or zero) on a nil
// ledger, matching the other telemetry instruments.
func TestEnergyLedgerNilIsSafe(t *testing.T) {
	var led *EnergyLedger
	led.SetClock(func() time.Duration { return 0 })
	led.BindMetrics(nil, nil, nil)
	led.Observe("a", 1, 2)
	led.SetBudget(10)
	led.EndSession("a")
	led.Seed(nil)
	if tot := led.Totals(); tot != (EnergyTotals{}) {
		t.Errorf("nil ledger totals = %+v, want zero", tot)
	}
	if led.Sessions() != nil || led.Export() != nil {
		t.Error("nil ledger returned non-nil rows")
	}
	if n := testing.AllocsPerRun(100, func() { led.Observe("a", 1, 2) }); n != 0 {
		t.Errorf("nil-ledger Observe allocates %.1f/op, want 0", n)
	}
}

// TestEnergyLedgerMetricsBinding: observations drive the bound gauge and
// float counters, and Seed deliberately leaves the counters alone
// (Prometheus counter-reset semantics).
func TestEnergyLedgerMetricsBinding(t *testing.T) {
	reg := NewRegistry()
	mt := NewMetrics(reg)
	led, now := manualLedger()
	led.BindMetrics(mt.SessionEnergy, mt.EnergyTotal, mt.BudgetOverrunSeconds)

	led.Observe("a", 1, 10)
	led.SetBudget(5)
	*now = 2 * time.Second
	led.Observe("a", 1, 10)
	if got := mt.EnergyTotal.Value(); math.Abs(got-20) > 1e-12 {
		t.Errorf("harp_energy_joules_total = %.3f, want 20", got)
	}
	if got := mt.BudgetOverrunSeconds.Value(); math.Abs(got-2) > 1e-12 {
		t.Errorf("harp_budget_overrun_seconds_total = %.3f, want 2", got)
	}
	if got := mt.SessionEnergy.With("a").Value(); math.Abs(got-20) > 1e-12 {
		t.Errorf("harp_session_energy_joules{instance=a} = %.3f, want 20", got)
	}

	led.Seed(led.Export())
	if got := mt.EnergyTotal.Value(); math.Abs(got-20) > 1e-12 {
		t.Errorf("Seed moved the total counter to %.3f — it must never rewind or re-add", got)
	}
}

// --- New instrument types ---

func TestFloatCounterRejectsNonPositive(t *testing.T) {
	var c FloatCounter
	c.Add(2.5)
	c.Add(2.5)
	c.Add(-1)
	c.Add(0)
	c.Add(math.NaN())
	if got := c.Value(); got != 5 {
		t.Errorf("value = %v, want 5 (negative/zero/NaN ignored)", got)
	}
	var nilC *FloatCounter
	nilC.Add(1) // must not panic
}

func TestHistogramQuantile(t *testing.T) {
	h := NewRegistry().Histogram("q_seconds", "", []float64{0.01, 0.1, 1})
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	for i := 0; i < 99; i++ {
		h.Observe(0.005) // first bucket
	}
	h.Observe(0.5) // third bucket
	if got := h.Quantile(0.5); got != 0.01 {
		t.Errorf("p50 = %v, want the first bucket bound 0.01", got)
	}
	if got := h.Quantile(0.999); got != 1 {
		t.Errorf("p99.9 = %v, want the bucket bound 1", got)
	}
	h.Observe(5) // past the last bucket
	if got := h.Quantile(1); !math.IsInf(got, 1) {
		t.Errorf("p100 with an overflow observation = %v, want +Inf", got)
	}
}

// TestPrometheusHostileLabels: label values containing quotes, backslashes
// and newlines are %q-escaped in the exposition, keeping the text format
// parseable one line per sample.
func TestPrometheusHostileLabels(t *testing.T) {
	reg := NewRegistry()
	gv := reg.GaugeVec("g_metric", "gauge", "instance")
	hv := reg.HistogramVec("h_seconds", "hist", "phase", []float64{1})
	hostile := "bad\"quote\\slash\nnewline"
	gv.With(hostile).Set(1)
	hv.With(hostile).Observe(0.5)

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	escaped := `bad\"quote\\slash\nnewline`
	if !strings.Contains(out, `instance="`+escaped+`"`) {
		t.Errorf("gauge label not escaped:\n%s", out)
	}
	if !strings.Contains(out, `phase="`+escaped+`"`) {
		t.Errorf("histogram label not escaped:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.Contains(line, "{") && !strings.Contains(line, "}") {
			t.Errorf("sample line split by a raw newline: %q", line)
		}
	}
	if !strings.Contains(out, `h_seconds_bucket{phase="`+escaped+`",le="+Inf"}`) {
		t.Errorf("histogram vec missing +Inf bucket:\n%s", out)
	}
}

// --- Loss accounting ---

// TestTracerDropCounting: ring evictions drive the bound counter.
func TestTracerDropCounting(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("dropped_total", "")
	tr := NewTracer(2)
	tr.CountDrops(c)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Kind: EvMeasureSample, Seq: i})
	}
	if got := c.Value(); got != 3 {
		t.Errorf("drop counter = %d, want 3 (5 emits into a 2-slot ring)", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Errorf("Dropped() = %d, want 3", got)
	}
}

// TestJournalErrorCounting: every record lost to a write error is counted,
// including records suppressed by the sticky error.
func TestJournalErrorCounting(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("journal_errors_total", "")
	j := NewJournal(failWriter{})
	j.CountErrors(c)
	_ = j.Record(EpochRecord{})
	_ = j.Record(EpochRecord{})
	_ = j.Record(EpochRecord{})
	if got := c.Value(); got != 3 {
		t.Errorf("journal error counter = %d, want 3", got)
	}
}
