package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsSafeAndFree(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer enabled")
	}
	if got := tr.Now(); got != 0 {
		t.Errorf("nil Now = %v", got)
	}
	tr.SetClock(func() time.Duration { return time.Second })
	tr.Emit(Event{Kind: EvMeasureSample})
	if tr.Events() != nil || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer recorded something")
	}
	allocs := testing.AllocsPerRun(100, func() {
		tr.Emit(Event{Kind: EvMeasureSample, Instance: "a/1", Utility: 1, Power: 2})
	})
	if allocs != 0 {
		t.Errorf("nil Emit allocates %v/op", allocs)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(4)
	var tick time.Duration
	tr.SetClock(func() time.Duration { tick += time.Millisecond; return tick })
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: EvMeasureSample, Seq: i})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != 6+i {
			t.Errorf("evs[%d].Seq = %d, want %d", i, ev.Seq, 6+i)
		}
		if ev.At == 0 {
			t.Error("event not stamped")
		}
	}
	if tr.Total() != 10 || tr.Dropped() != 6 {
		t.Errorf("total/dropped = %d/%d, want 10/6", tr.Total(), tr.Dropped())
	}
	if got := tr.Tail(2); len(got) != 2 || got[1].Seq != 9 {
		t.Errorf("Tail(2) = %+v", got)
	}
}

func TestTracerDeterministicClock(t *testing.T) {
	mk := func() []Event {
		tr := NewTracer(16)
		var now time.Duration
		tr.SetClock(func() time.Duration { return now })
		for i := 0; i < 5; i++ {
			now = time.Duration(i) * 50 * time.Millisecond
			tr.Emit(Event{Kind: EvDecisionPushed, Seq: i + 1, Instance: "x/1"})
		}
		return tr.Events()
	}
	a, b := mk(), mk()
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Error("identical runs produced different event streams")
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Emit(Event{Kind: EvMeasureSample, Seq: i})
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 800 {
		t.Errorf("total = %d, want 800", tr.Total())
	}
	if len(tr.Events()) != 128 {
		t.Errorf("buffered = %d, want 128", len(tr.Events()))
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help c")
	g := r.Gauge("g", "help g")
	h := r.Histogram("h_seconds", "help h", []float64{0.1, 1})
	c.Inc()
	c.Add(2)
	g.Set(4.5)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	if c.Value() != 3 {
		t.Errorf("counter = %d", c.Value())
	}
	if g.Value() != 4.5 {
		t.Errorf("gauge = %g", g.Value())
	}
	if h.Count() != 3 || h.Sum() != 5.55 {
		t.Errorf("hist count/sum = %d/%g", h.Count(), h.Sum())
	}
	// Re-registering returns the same instrument.
	if r.Counter("c_total", "") != c {
		t.Error("counter not deduplicated")
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("x", "")
	gv := r.GaugeVec("x", "", "l")
	h := r.Histogram("x", "", nil)
	c.Inc()
	g.Set(1)
	gv.With("a").Set(2)
	gv.Delete("a")
	h.Observe(3)
	var m *Metrics = NewMetrics(nil)
	if m != nil {
		t.Error("NewMetrics(nil) != nil")
	}
	r.WritePrometheus(&bytes.Buffer{})
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(9)
		h.Observe(1)
	})
	if allocs != 0 {
		t.Errorf("nil instruments allocate %v/op", allocs)
	}
}

func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	m := NewMetrics(r)
	m.Decisions.Add(7)
	m.Sessions.Set(2)
	m.SessionUtility.With("ep.C/1").Set(123.5)
	m.AllocLatency.Observe(0.0007)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	text := buf.String()
	for _, want := range []string{
		"# TYPE harp_decisions_total counter",
		"harp_decisions_total 7",
		"harp_sessions 2",
		`harp_session_utility{instance="ep.C/1"} 123.5`,
		"# TYPE harp_allocation_seconds histogram",
		`harp_allocation_seconds_bucket{le="0.001"} 1`,
		"harp_allocation_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus text missing %q:\n%s", want, text)
		}
	}
}

func TestExpvarPublishIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("v_total", "").Inc()
	r.PublishExpvar("harp-test-metrics")
	// A second publication (e.g. another server in the same process) must
	// not panic.
	NewRegistry().PublishExpvar("harp-test-metrics")
	snap := r.snapshot()
	if snap["v_total"] != uint64(1) {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	recs := []EpochRecord{
		{Trigger: "register", Inputs: []EpochInput{{Instance: "a/1", App: "a", Stage: "initial"}},
			Outputs: []EpochOutput{{Instance: "a/1", Seq: 1, Vector: "P2", Threads: 2, Cores: 2}}},
		{Trigger: "cadence", AtSec: 5.05, PowerBudgetW: 42},
	}
	for _, rec := range recs {
		if err := j.Record(rec); err != nil {
			t.Fatal(err)
		}
	}
	if j.Epochs() != 2 {
		t.Errorf("epochs = %d", j.Epochs())
	}
	got, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Epoch != 1 || got[1].Epoch != 2 {
		t.Fatalf("read back %+v", got)
	}
	if got[0].Outputs[0].Vector != "P2" || got[1].PowerBudgetW != 42 {
		t.Errorf("fields lost: %+v", got)
	}

	var nilJ *Journal
	if err := nilJ.Record(EpochRecord{}); err != nil || nilJ.Epochs() != 0 || nilJ.Err() != nil {
		t.Error("nil journal not a no-op")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errFail }

var errFail = &json.UnsupportedValueError{Str: "fail"}

func TestJournalStickyError(t *testing.T) {
	j := NewJournal(failWriter{})
	if err := j.Record(EpochRecord{}); err == nil {
		t.Fatal("write error not surfaced")
	}
	if j.Err() == nil {
		t.Error("error not sticky")
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	tr := NewTracer(64)
	var now time.Duration
	tr.SetClock(func() time.Duration { return now })
	now = 50 * time.Millisecond
	tr.Emit(Event{Kind: EvSessionRegistered, Instance: "ep.C/1", App: "ep.C"})
	now = 100 * time.Millisecond
	tr.Emit(Event{Kind: EvMeasureSample, Instance: "ep.C/1", Utility: 120, Power: 30})
	tr.Emit(Event{Kind: EvMonitorSample, Vals: [4]float64{0.04, 0.01}})
	now = 150 * time.Millisecond
	tr.Emit(Event{Kind: EvDecisionPushed, Instance: "ep.C/1", Vector: "P4", Seq: 2, Exploring: true})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	// 4 events + 2 thread-name metadata records (ep.C/1 and the rm track).
	if len(evs) != 6 {
		t.Fatalf("chrome events = %d, want 6", len(evs))
	}
	phases := map[string]int{}
	for _, ev := range evs {
		phases[ev["ph"].(string)]++
		if _, ok := ev["ts"]; !ok && ev["ph"] != "M" {
			t.Errorf("event without ts: %v", ev)
		}
	}
	if phases["C"] != 2 || phases["i"] != 2 || phases["M"] != 2 {
		t.Errorf("phase histogram = %v", phases)
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{
		EvSessionRegistered, EvSessionExited, EvMeasureSample, EvTableUpdated,
		EvExplorationStep, EvAllocationComputed, EvDecisionPushed,
		EvMonitorSample, EvAppSample, EvPhaseChange,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "event(?)" || seen[s] {
			t.Errorf("kind %d has bad/duplicate name %q", k, s)
		}
		seen[s] = true
	}
}
