// Package telemetry makes HARP's 50 ms adaptation loop observable
// (measure → learn → allocate → push, §5.3): a ring-buffered structured
// event tracer, a metrics registry exported in Prometheus text format and
// via expvar, a per-epoch JSONL decision journal, and a Chrome trace_event
// exporter for Perfetto/about:tracing.
//
// All of it is stdlib-only and built around two rules:
//
//   - Zero cost when disabled. A nil *Tracer, *Journal or *Metrics is a
//     valid no-op: every method checks its receiver, events are plain value
//     structs (no interface boxing), and instrumented hot paths perform no
//     allocations when telemetry is off.
//
//   - Deterministic-replay safe. The tracer never reads the wall clock by
//     itself in simulated paths: timestamps come from an injected clock
//     (harpsim injects the machine's virtual clock; harpd injects wall time
//     since startup), so two runs of the same scenario produce bit-identical
//     event streams.
package telemetry

import (
	"sync"
	"time"
)

// EventKind identifies one step of the adaptation loop.
type EventKind uint8

// Event kinds, in typical flow order.
const (
	// EvSessionRegistered: an application registered with the RM.
	EvSessionRegistered EventKind = iota + 1
	// EvSessionExited: a session deregistered (exit or broken peer).
	EvSessionExited
	// EvMeasureSample: one smoothed (utility, power) sample entered the RM.
	EvMeasureSample
	// EvTableUpdated: an exploration point completed and was committed to
	// the application's operating-point table.
	EvTableUpdated
	// EvExplorationStep: the explorer picked the next configuration to
	// measure.
	EvExplorationStep
	// EvAllocationComputed: the MMKP solver produced a system-wide
	// allocation (Vals[0] = λ iterations, Vals[1] = candidate count,
	// Vals[2] = co-allocated apps).
	EvAllocationComputed
	// EvDecisionPushed: a changed decision was pushed to an application.
	EvDecisionPushed
	// EvMonitorSample: the monitor read all tracked processes for one tick
	// (Vals[k] = busy hardware-thread seconds on core kind k).
	EvMonitorSample
	// EvAppSample: raw per-application counters for one tick (Utility = raw
	// IPS, Power = raw watts, Vals[0/1] = smoothed IPS/power).
	EvAppSample
	// EvPhaseChange: an application announced an execution-stage change.
	EvPhaseChange
	// EvSessionSuspect: a session missed its liveness deadline and is
	// suspected dead (Stage carries the reason, e.g. "silent" or
	// "write-failed").
	EvSessionSuspect
	// EvSessionQuarantined: a suspect session stayed silent past the
	// quarantine deadline — learning frozen, cores reclaimed.
	EvSessionQuarantined
	// EvSessionReadmitted: a suspect or quarantined session resumed
	// reporting and was restored to normal management.
	EvSessionReadmitted
	// EvSessionReaped: the liveness reaper deregistered a dead session
	// (as opposed to a voluntary exit, which is EvSessionExited).
	EvSessionReaped
	// EvStateRecovered: the RM imported durable state on startup (Seq =
	// recovered generation, Vals[0] = replayed tables, Vals[1] = prior
	// sessions, Vals[2] = replayed WAL records; Stage carries "cold" when
	// recovery fell back to an empty store).
	EvStateRecovered
	// EvSnapshotWritten: a full state snapshot was persisted (Seq = decision
	// sequence high-water at the time, Vals[0] = snapshot bytes).
	EvSnapshotWritten
	// EvSessionRejected: a registration was refused by admission control
	// (Stage carries the reason, e.g. "max-sessions").
	EvSessionRejected
	// EvSpanBegin: a flight-recorder phase opened (Stage = phase label).
	// Rendered as a Chrome "B" duration event; see BeginPhase.
	EvSpanBegin
	// EvSpanEnd: the matching phase close ("E" duration event).
	EvSpanEnd
	// EvEpochDegraded: the epoch's primary solve failed or blew its deadline
	// budget and a degradation-ladder rung resolved the epoch instead (Stage
	// = rung: degraded-greedy, degraded-stale or frozen).
	EvEpochDegraded
	// EvSessionPanicked: a session's inputs made the solver panic; the
	// session was quarantined to isolate the poisonous table (Stage carries
	// the truncated panic value).
	EvSessionPanicked
	// EvStoreDegraded: the durable-state store exhausted its write retries
	// and entered durability-degraded mode (Stage = "degraded"), or a later
	// successful write healed it (Stage = "healed").
	EvStoreDegraded
	// EvClusterPlaced: the fleet coordinator placed a session onto a
	// machine (Stage = machine ID, Power = admitted worst-case demand W).
	EvClusterPlaced
	// EvClusterMigrated: a session finished migrating between machines
	// (Stage = "src→dst"; the remove half of the move was journalled when
	// the migration started).
	EvClusterMigrated
	// EvClusterMachineDead: the coordinator declared a machine dead after
	// missed heartbeats (Stage = machine ID, Vals[0] = orphaned sessions).
	EvClusterMachineDead
	// EvClusterFailover: the standby coordinator promoted itself after the
	// primary died (Vals[0] = sessions recovered from the shipped snapshot,
	// Vals[1] = orphans queued for re-homing).
	EvClusterFailover
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvSessionRegistered:
		return "session-registered"
	case EvSessionExited:
		return "session-exited"
	case EvMeasureSample:
		return "measure-sample"
	case EvTableUpdated:
		return "table-updated"
	case EvExplorationStep:
		return "exploration-step"
	case EvAllocationComputed:
		return "allocation-computed"
	case EvDecisionPushed:
		return "decision-pushed"
	case EvMonitorSample:
		return "monitor-sample"
	case EvAppSample:
		return "app-sample"
	case EvPhaseChange:
		return "phase-change"
	case EvSessionSuspect:
		return "session-suspect"
	case EvSessionQuarantined:
		return "session-quarantined"
	case EvSessionReadmitted:
		return "session-readmitted"
	case EvSessionReaped:
		return "session-reaped"
	case EvStateRecovered:
		return "state-recovered"
	case EvSnapshotWritten:
		return "snapshot-written"
	case EvSessionRejected:
		return "session-rejected"
	case EvSpanBegin:
		return "span-begin"
	case EvSpanEnd:
		return "span-end"
	case EvEpochDegraded:
		return "epoch-degraded"
	case EvSessionPanicked:
		return "session-panicked"
	case EvStoreDegraded:
		return "store-degraded"
	case EvClusterPlaced:
		return "cluster-placed"
	case EvClusterMigrated:
		return "cluster-migrated"
	case EvClusterMachineDead:
		return "cluster-machine-dead"
	case EvClusterFailover:
		return "cluster-failover"
	default:
		return "event(?)"
	}
}

// MarshalJSON renders the kind as its string name, so serialized event
// streams (harpctl trace dump) are readable without the constant table.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// Event is one typed trace record. It is a plain value struct so emitting
// one never allocates; kind-specific numerics ride in Vals (see the kind
// constants for each layout).
type Event struct {
	// At is the event time on the tracer's clock (virtual time in harpsim,
	// wall time since startup in harpd).
	At time.Duration `json:"at"`
	// Kind identifies the adaptation-loop step.
	Kind EventKind `json:"kind"`
	// Instance is the session instance ("app/pid"), when applicable.
	Instance string `json:"instance,omitempty"`
	// App is the application name, when applicable.
	App string `json:"app,omitempty"`
	// Vector is the canonical extended-resource-vector key, when applicable.
	Vector string `json:"vector,omitempty"`
	// Stage is the exploration stage or reallocation trigger label.
	Stage string `json:"stage,omitempty"`
	// Seq is the decision sequence number (EvDecisionPushed) or a
	// kind-specific count.
	Seq int `json:"seq,omitempty"`
	// Utility and Power carry the sample values, when applicable.
	Utility float64 `json:"utility,omitempty"`
	Power   float64 `json:"power,omitempty"`
	// Vals holds kind-specific numerics (per-kind occupancy, λ iterations…).
	Vals [4]float64 `json:"vals"`
	// Exploring and CoAllocated mirror the decision flags.
	Exploring   bool `json:"exploring,omitempty"`
	CoAllocated bool `json:"coAllocated,omitempty"`
}

// DefaultCapacity is the tracer ring size when none is given — at the 50 ms
// cadence it holds several minutes of adaptation-loop history.
const DefaultCapacity = 8192

// Tracer is a fixed-capacity ring buffer of Events, safe for concurrent
// use. A nil *Tracer is a valid disabled tracer: Emit is a no-op and Now
// returns 0, so instrumented code needs no nil checks of its own.
type Tracer struct {
	mu    sync.Mutex
	clock func() time.Duration
	buf   []Event
	next  int
	total uint64
	drops *Counter
}

// NewTracer creates a tracer holding the last capacity events (<= 0 selects
// DefaultCapacity). The default clock is wall time since creation; callers
// driving simulated time must inject their virtual clock via SetClock
// before emitting.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	start := time.Now()
	return &Tracer{
		clock: func() time.Duration { return time.Since(start) },
		buf:   make([]Event, 0, capacity),
	}
}

// SetClock replaces the tracer's clock (harpsim injects machine.Now so the
// event stream is deterministic). No-op on a nil tracer.
func (t *Tracer) SetClock(clock func() time.Duration) {
	if t == nil || clock == nil {
		return
	}
	t.mu.Lock()
	t.clock = clock
	t.mu.Unlock()
}

// Enabled reports whether events are being recorded. Hot paths use it to
// skip building event fields (e.g. vector keys) when tracing is off.
func (t *Tracer) Enabled() bool { return t != nil }

// Now returns the current time on the tracer's clock (0 when nil).
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	now := t.clock()
	t.mu.Unlock()
	return now
}

// CountDrops binds a counter (typically harp_tracer_dropped_total) that is
// incremented each time a full ring evicts an event, so consumers can alert
// on trace gaps instead of discovering them via Dropped(). No-op on a nil
// tracer or counter.
func (t *Tracer) CountDrops(c *Counter) {
	if t == nil || c == nil {
		return
	}
	t.mu.Lock()
	t.drops = c
	t.mu.Unlock()
}

// Emit stamps the event with the tracer's clock and records it, evicting
// the oldest event when the ring is full. No-op (and allocation-free) on a
// nil tracer.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.emit(ev)
}

// emit is the non-nil core of Emit; it returns the stamped timestamp so
// BeginPhase can capture the span start with a single lock acquisition.
func (t *Tracer) emit(ev Event) time.Duration {
	t.mu.Lock()
	at := t.clock()
	ev.At = at
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
		t.next = (t.next + 1) % len(t.buf)
		t.drops.Inc()
	}
	t.total++
	t.mu.Unlock()
	return at
}

// Events returns a snapshot of the buffered events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Tail returns a snapshot of the most recent n events, oldest first
// (n <= 0 returns everything).
func (t *Tracer) Tail(n int) []Event {
	evs := t.Events()
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// Total returns how many events were emitted over the tracer's lifetime,
// including those evicted from the ring.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events were evicted from the ring.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(len(t.buf))
}
