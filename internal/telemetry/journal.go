package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// EpochInput is one application's smoothed state entering an epoch: what
// the allocator saw when it decided.
type EpochInput struct {
	Instance string  `json:"instance"`
	App      string  `json:"app"`
	Stage    string  `json:"stage"`
	Utility  float64 `json:"utility"`
	PowerW   float64 `json:"power_w"`
	// Measured is the number of measured operating points in the table.
	Measured int `json:"measured_points"`
}

// EpochOutput is one decision pushed during an epoch.
type EpochOutput struct {
	Instance    string `json:"instance"`
	Seq         int    `json:"seq"`
	Vector      string `json:"vector"`
	Threads     int    `json:"threads"`
	Cores       int    `json:"cores"`
	Exploring   bool   `json:"exploring,omitempty"`
	CoAllocated bool   `json:"co_allocated,omitempty"`
	// PredPowerW is the selected operating point's predicted power draw —
	// the application's slice of the epoch's power budget (0 for
	// exploration probes, which have no prediction yet).
	PredPowerW float64 `json:"pred_power_w,omitempty"`
}

// EpochRecord is one line of the decision journal: the adaptation loop's
// inputs and outputs for one epoch, sufficient to replay or diff a run.
type EpochRecord struct {
	// Epoch numbers records sequentially from 1.
	Epoch int `json:"epoch"`
	// AtSec is the epoch time on the injected clock (virtual seconds in
	// harpsim, wall seconds since startup in harpd).
	AtSec float64 `json:"at_sec"`
	// Trigger labels what caused the epoch: "register", "table-upload",
	// "deregister", "reap", "quarantine", "readmit", "phase-change",
	// "cadence", "graduation", "exploration" or "manual".
	Trigger string `json:"trigger"`
	// LambdaIters is the allocator's subgradient iteration count — the
	// iterations to the λ fixpoint, 0 when the epoch pushed only exploration
	// probes or was served from the solution cache.
	LambdaIters int `json:"lambda_iters,omitempty"`
	// SolveSource tells where the epoch's solution came from: "cold" (full
	// solve from zero λ), "warm" (solve seeded with the previous λ),
	// "cached" (served from the fingerprinted solution cache), or a
	// degradation-ladder rung when the primary solve failed or blew its
	// deadline budget — "degraded-greedy" (greedy fallback solve),
	// "degraded-stale" (last-known-good allocation replayed) or "frozen"
	// (no usable allocation; pushes frozen). Empty for epochs without a
	// solve.
	SolveSource string `json:"solve_source,omitempty"`
	// PowerBudgetW is the predicted system power of the epoch's standing
	// allocation — the sum of the per-app slices in Outputs plus unchanged
	// allocations.
	PowerBudgetW float64 `json:"power_budget_w"`
	// EnergyJ is the fleet's cumulative attributed energy at the end of the
	// epoch (joules on the energy ledger's clock). Omitted when no energy
	// ledger is wired in, keeping journals byte-identical to older runs.
	EnergyJ float64 `json:"energy_j,omitempty"`
	// BudgetHeadroomW is PowerBudgetW minus the measured fleet power at the
	// epoch — negative while the fleet draws more than the allocation
	// predicted. Omitted without an energy ledger.
	BudgetHeadroomW float64 `json:"budget_headroom_w,omitempty"`
	// Error records a failed reallocation: the allocator's error message for
	// an epoch that pushed no decisions because the solve itself failed.
	// Empty for successful epochs.
	Error string `json:"error,omitempty"`
	// Inputs snapshot every session's smoothed state.
	Inputs []EpochInput `json:"inputs"`
	// Outputs list the decisions pushed during this epoch (empty when the
	// reallocation confirmed the standing allocation).
	Outputs []EpochOutput `json:"outputs"`
}

// Journal writes epoch records as JSON lines. A nil *Journal is a valid
// disabled journal. Safe for concurrent use.
type Journal struct {
	mu     sync.Mutex
	w      io.Writer
	enc    *json.Encoder
	epochs int
	err    error
	errs   *Counter
}

// NewJournal creates a journal writing to w.
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: w, enc: json.NewEncoder(w)}
}

// Enabled reports whether records are being written.
func (j *Journal) Enabled() bool { return j != nil }

// CountErrors binds a counter (typically harp_journal_errors_total) that is
// incremented for every record lost to a write error — the first failing
// write and each record suppressed by the sticky error after it. No-op on a
// nil journal or counter.
func (j *Journal) CountErrors(c *Counter) {
	if j == nil || c == nil {
		return
	}
	j.mu.Lock()
	j.errs = c
	j.mu.Unlock()
}

// Record assigns the next epoch number and writes the record as one JSON
// line. The first write error sticks and suppresses further output.
func (j *Journal) Record(rec EpochRecord) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		j.errs.Inc()
		return j.err
	}
	j.epochs++
	rec.Epoch = j.epochs
	if err := j.enc.Encode(rec); err != nil {
		j.err = fmt.Errorf("telemetry: journal write: %w", err)
		j.errs.Inc()
		return j.err
	}
	return nil
}

// Epochs returns how many records were written.
func (j *Journal) Epochs() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.epochs
}

// Err returns the sticky write error, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ReadJournal parses a JSONL decision journal back into records — the
// replay/diff half of the journal contract.
func ReadJournal(r io.Reader) ([]EpochRecord, error) {
	var out []EpochRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var rec EpochRecord
		if err := json.Unmarshal(text, &rec); err != nil {
			return nil, fmt.Errorf("telemetry: journal line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: journal read: %w", err)
	}
	return out, nil
}
