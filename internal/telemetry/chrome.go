package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one record of the Chrome trace_event format (the JSON
// array flavour understood by about:tracing and Perfetto).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the buffered events as a Chrome trace_event
// JSON array. Decision/lifecycle events become instant events on one track
// per session instance; measurement streams become counter tracks, so
// Perfetto plots per-app utility/power and per-kind core occupancy over
// the run.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	evs := t.Events()

	tids := make(map[string]int)
	tid := func(track string) int {
		if track == "" {
			track = "rm"
		}
		id, ok := tids[track]
		if !ok {
			id = len(tids) + 1
			tids[track] = id
		}
		return id
	}

	out := make([]chromeEvent, 0, 2*len(evs)+8)
	for _, ev := range evs {
		ts := float64(ev.At.Microseconds())
		track := ev.Instance
		if track == "" {
			track = ev.App
		}
		switch ev.Kind {
		case EvMeasureSample:
			out = append(out, chromeEvent{
				Name: "smoothed " + track, Ph: "C", Ts: ts, Pid: 1, Tid: tid(track),
				Args: map[string]any{"utility": ev.Utility, "power_w": ev.Power},
			})
		case EvAppSample:
			out = append(out, chromeEvent{
				Name: "raw " + track, Ph: "C", Ts: ts, Pid: 1, Tid: tid(track),
				Args: map[string]any{"ips": ev.Utility, "power_w": ev.Power},
			})
		case EvMonitorSample:
			args := make(map[string]any, len(ev.Vals))
			for k, v := range ev.Vals {
				args[fmt.Sprintf("kind%d_busy_s", k)] = v
			}
			out = append(out, chromeEvent{
				Name: "core occupancy", Ph: "C", Ts: ts, Pid: 1, Tid: tid(""),
				Args: args,
			})
		case EvSpanBegin, EvSpanEnd:
			// Flight-recorder phases render as nested duration events on the
			// RM track — spans close in LIFO order, so the B/E pairing is a
			// well-formed flame stack.
			ph := "B"
			if ev.Kind == EvSpanEnd {
				ph = "E"
			}
			out = append(out, chromeEvent{Name: ev.Stage, Ph: ph, Ts: ts, Pid: 1, Tid: tid("")})
		default:
			args := map[string]any{}
			if ev.Vector != "" {
				args["vector"] = ev.Vector
			}
			if ev.Stage != "" {
				args["stage"] = ev.Stage
			}
			if ev.Seq != 0 {
				args["seq"] = ev.Seq
			}
			if ev.Exploring {
				args["exploring"] = true
			}
			if ev.CoAllocated {
				args["co_allocated"] = true
			}
			out = append(out, chromeEvent{
				Name: ev.Kind.String(), Ph: "i", Ts: ts, Pid: 1, Tid: tid(track),
				S: "t", Args: args,
			})
		}
	}

	// Thread-name metadata so tracks carry instance names, in tid order so
	// the serialized trace is deterministic.
	byID := make([]string, len(tids)+1)
	for track, id := range tids {
		byID[id] = track
	}
	for id := 1; id < len(byID); id++ {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: id,
			Args: map[string]any{"name": byID[id]},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
