package telemetry

import (
	"sort"
	"sync"
	"time"
)

// EnergyLedger integrates each session's smoothed power over tracer-clock
// time into cumulative joules, and utility over the same base into
// utility-seconds, attributing both per session and to the fleet. A nil
// ledger is a valid no-op on every method, and Observe on the hot path
// allocates nothing once a session's entry exists.
//
// Integration is trapezoidal between consecutive observations of the same
// session: dJ = dt·(p0+p1)/2. The fleet total is maintained incrementally —
// every dJ added to a session is added to the fleet — so the conservation
// invariant Σ active-session joules + retired joules == fleet joules holds
// exactly, not just within tolerance.
//
// The clock is injectable like the tracer's: harpsim rebinds it to the
// machine's virtual clock so same-seed runs account identical joules, and
// harpd binds it to wall time since server start.
type EnergyLedger struct {
	mu       sync.Mutex
	clock    func() time.Duration
	sessions map[string]*sessionEnergy

	fleetJoules float64 // cumulative, includes retired
	fleetUtilS  float64
	fleetPowerW float64 // Σ last observed power of active sessions
	fleetLastAt time.Duration
	fleetSeen   bool

	budgetW    float64 // current power budget (0 = none)
	overrunSec float64 // cumulative seconds with fleetPowerW > budgetW

	retiredJoules float64 // folded in from ended sessions
	retiredUtilS  float64

	// Optional metric bindings; all nil-safe.
	sessionGauge   *GaugeVec     // harp_session_energy_joules{instance=…}
	totalCounter   *FloatCounter // harp_energy_joules_total
	overrunCounter *FloatCounter // harp_budget_overrun_seconds_total
}

type sessionEnergy struct {
	joules    float64
	utilS     float64
	lastAt    time.Duration
	lastPower float64
	lastUtil  float64
	seen      bool // at least one observation since create/seed
	gauge     *Gauge
}

// SessionEnergy is one row of the ledger's per-session view.
type SessionEnergy struct {
	Instance string
	Joules   float64
	UtilityS float64
	PowerW   float64 // last observed smoothed power
}

// Efficiency returns utility-seconds bought per joule (0 when no energy has
// been attributed yet).
func (s SessionEnergy) Efficiency() float64 {
	if s.Joules <= 0 {
		return 0
	}
	return s.UtilityS / s.Joules
}

// EnergyTotals is a consistent snapshot of the ledger's fleet accumulators.
type EnergyTotals struct {
	Joules          float64 // cumulative fleet joules (includes retired)
	UtilityS        float64 // cumulative fleet utility-seconds
	PowerW          float64 // current Σ power of active sessions
	BudgetW         float64 // current budget (0 = none set)
	OverrunSec      float64 // cumulative seconds fleet power exceeded budget
	RetiredJoules   float64 // portion of Joules from ended sessions
	RetiredUtilityS float64
}

// NewEnergyLedger returns a ledger on a wall-clock-since-creation time base;
// rebind with SetClock before first use for virtual time.
func NewEnergyLedger() *EnergyLedger {
	start := time.Now()
	return &EnergyLedger{
		clock:    func() time.Duration { return time.Since(start) },
		sessions: make(map[string]*sessionEnergy),
	}
}

// SetClock rebinds the ledger's time base. Call before any observation:
// integration across a clock swap is meaningless.
func (l *EnergyLedger) SetClock(clock func() time.Duration) {
	if l == nil || clock == nil {
		return
	}
	l.mu.Lock()
	l.clock = clock
	l.mu.Unlock()
}

// BindMetrics attaches the ledger's metric outputs: the per-session joule
// gauge, the fleet joule counter and the budget-overrun counter. Any of the
// three may be nil.
func (l *EnergyLedger) BindMetrics(session *GaugeVec, total, overrun *FloatCounter) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.sessionGauge = session
	l.totalCounter = total
	l.overrunCounter = overrun
	l.mu.Unlock()
}

// Observe accounts one measurement sample for a session: utility and
// smoothed power at the current ledger-clock time. The first observation of
// a session only anchors the trapezoid; energy accrues from the second on.
func (l *EnergyLedger) Observe(instance string, utility, power float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	now := l.clock()
	l.advanceFleet(now)
	s := l.sessions[instance]
	if s == nil {
		s = &sessionEnergy{}
		if l.sessionGauge != nil {
			s.gauge = l.sessionGauge.With(instance)
		}
		l.sessions[instance] = s
	} else if s.seen && now > s.lastAt {
		dt := (now - s.lastAt).Seconds()
		dJ := dt * (power + s.lastPower) / 2
		dU := dt * (utility + s.lastUtil) / 2
		s.joules += dJ
		s.utilS += dU
		l.fleetJoules += dJ
		l.fleetUtilS += dU
		if l.totalCounter != nil {
			l.totalCounter.Add(dJ)
		}
	}
	if s.seen {
		l.fleetPowerW -= s.lastPower
	}
	l.fleetPowerW += power
	s.lastAt = now
	s.lastPower = power
	s.lastUtil = utility
	s.seen = true
	if s.gauge != nil {
		s.gauge.Set(s.joules)
	}
	l.mu.Unlock()
}

// advanceFleet integrates budget overrun up to now (left Riemann on the
// fleet power as of the previous advance) and moves the fleet time cursor.
// Caller holds l.mu.
func (l *EnergyLedger) advanceFleet(now time.Duration) {
	if l.fleetSeen && now > l.fleetLastAt && l.budgetW > 0 && l.fleetPowerW > l.budgetW {
		dt := (now - l.fleetLastAt).Seconds()
		l.overrunSec += dt
		if l.overrunCounter != nil {
			l.overrunCounter.Add(dt)
		}
	}
	if !l.fleetSeen || now > l.fleetLastAt {
		l.fleetLastAt = now
		l.fleetSeen = true
	}
}

// SetBudget sets the fleet power budget (watts; 0 clears it). Overrun
// seconds before the change are settled against the old budget.
func (l *EnergyLedger) SetBudget(watts float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.advanceFleet(l.clock())
	l.budgetW = watts
	l.mu.Unlock()
}

// EndSession folds a departed session's accumulators into the retired
// totals and drops its entry (and per-session gauge). Fleet totals are
// unchanged: the session's joules were already counted there.
func (l *EnergyLedger) EndSession(instance string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if s := l.sessions[instance]; s != nil {
		if s.seen {
			l.fleetPowerW -= s.lastPower
		}
		l.retiredJoules += s.joules
		l.retiredUtilS += s.utilS
		delete(l.sessions, instance)
		if l.sessionGauge != nil {
			l.sessionGauge.Delete(instance)
		}
	}
	l.mu.Unlock()
}

// Totals returns a consistent snapshot of the fleet accumulators.
func (l *EnergyLedger) Totals() EnergyTotals {
	if l == nil {
		return EnergyTotals{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return EnergyTotals{
		Joules:          l.fleetJoules,
		UtilityS:        l.fleetUtilS,
		PowerW:          l.fleetPowerW,
		BudgetW:         l.budgetW,
		OverrunSec:      l.overrunSec,
		RetiredJoules:   l.retiredJoules,
		RetiredUtilityS: l.retiredUtilS,
	}
}

// Sessions returns the active per-session rows sorted by instance.
func (l *EnergyLedger) Sessions() []SessionEnergy {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]SessionEnergy, 0, len(l.sessions))
	for inst, s := range l.sessions {
		out = append(out, SessionEnergy{
			Instance: inst,
			Joules:   s.joules,
			UtilityS: s.utilS,
			PowerW:   s.lastPower,
		})
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Instance < out[j].Instance })
	return out
}

// EnergyState is the ledger's durable form, persisted in store.State so
// joules survive a warm restart. Active sessions are listed individually;
// ended sessions ride in the retired aggregates.
type EnergyState struct {
	FleetJoules     float64              `json:"fleetJoules"`
	FleetUtilityS   float64              `json:"fleetUtilityS"`
	OverrunSec      float64              `json:"overrunSec,omitempty"`
	RetiredJoules   float64              `json:"retiredJoules,omitempty"`
	RetiredUtilityS float64              `json:"retiredUtilityS,omitempty"`
	Sessions        []SessionEnergyState `json:"sessions,omitempty"`
}

// SessionEnergyState is one persisted per-session accumulator pair.
type SessionEnergyState struct {
	Instance string  `json:"instance"`
	Joules   float64 `json:"joules"`
	UtilityS float64 `json:"utilityS,omitempty"`
}

// Clone deep-copies the state (nil in, nil out).
func (st *EnergyState) Clone() *EnergyState {
	if st == nil {
		return nil
	}
	out := *st
	out.Sessions = append([]SessionEnergyState(nil), st.Sessions...)
	return &out
}

// Export snapshots the ledger for persistence (sessions sorted by instance
// for deterministic serialization). Nil ledger exports nil.
func (l *EnergyLedger) Export() *EnergyState {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	st := &EnergyState{
		FleetJoules:     l.fleetJoules,
		FleetUtilityS:   l.fleetUtilS,
		OverrunSec:      l.overrunSec,
		RetiredJoules:   l.retiredJoules,
		RetiredUtilityS: l.retiredUtilS,
	}
	for inst, s := range l.sessions {
		st.Sessions = append(st.Sessions, SessionEnergyState{
			Instance: inst,
			Joules:   s.joules,
			UtilityS: s.utilS,
		})
	}
	l.mu.Unlock()
	sort.Slice(st.Sessions, func(i, j int) bool { return st.Sessions[i].Instance < st.Sessions[j].Instance })
	return st
}

// Seed resets the ledger to a recovered state: accumulators restored,
// integration re-anchored (seeded sessions accrue again from their next
// observation — no energy is invented for the downtime). The Prometheus
// counters bound via BindMetrics are deliberately NOT rewound or advanced:
// counters track joules attributed by this process and keep normal
// counter-reset semantics; recovered totals surface through Totals and the
// journal instead. Seed(nil) only clears the session table.
func (l *EnergyLedger) Seed(st *EnergyState) {
	if l == nil {
		return
	}
	l.mu.Lock()
	for inst := range l.sessions {
		if l.sessionGauge != nil {
			l.sessionGauge.Delete(inst)
		}
		delete(l.sessions, inst)
	}
	l.fleetPowerW = 0
	l.fleetSeen = false
	if st != nil {
		l.fleetJoules = st.FleetJoules
		l.fleetUtilS = st.FleetUtilityS
		l.overrunSec = st.OverrunSec
		l.retiredJoules = st.RetiredJoules
		l.retiredUtilS = st.RetiredUtilityS
		for _, s := range st.Sessions {
			se := &sessionEnergy{joules: s.Joules, utilS: s.UtilityS}
			if l.sessionGauge != nil {
				se.gauge = l.sessionGauge.With(s.Instance)
				se.gauge.Set(se.joules)
			}
			l.sessions[s.Instance] = se
		}
	}
	l.mu.Unlock()
}
