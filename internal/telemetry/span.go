package telemetry

import "time"

// Phase labels for the epoch flight recorder: the spans the resource
// manager, allocator and monitor open around each stage of an epoch. They
// appear as nested "B"/"E" duration events in the Chrome trace and as the
// `phase` label of the harp_epoch_phase_seconds histogram family.
const (
	// PhaseEpoch wraps one whole reallocation: every other phase nests
	// inside it.
	PhaseEpoch = "epoch"
	// PhaseSnapshot covers building the allocator's input snapshot from the
	// session set.
	PhaseSnapshot = "snapshot"
	// PhaseFingerprint covers hashing the solve inputs and the solution-cache
	// lookup.
	PhaseFingerprint = "fingerprint"
	// PhaseSolve covers candidate construction and the Lagrangian subgradient
	// iteration.
	PhaseSolve = "solve"
	// PhaseRepair covers the repair/rescue/improve passes and core
	// assignment.
	PhaseRepair = "repair"
	// PhasePush covers pushing the epoch's changed decisions to sessions.
	PhasePush = "push"
	// PhaseJournal covers flushing the epoch record to the decision journal.
	PhaseJournal = "journal"
	// PhaseMeasure covers one monitor sampling tick (outside the epoch span:
	// measurement feeds epochs, it is not part of one).
	PhaseMeasure = "measure"
)

// Span is one open phase interval. It is a plain value struct so opening
// and closing a span never allocates; the zero Span (returned by a nil
// tracer) is a valid no-op whose End does nothing. Spans are timed on the
// tracer's clock — virtual time in harpsim, where every span has zero
// duration and the B/E events are still emitted deterministically.
type Span struct {
	t     *Tracer
	h     *Histogram
	phase string
	start time.Duration
}

// BeginPhase opens a phase span: it emits an EvSpanBegin event and captures
// the tracer-clock start time. The returned Span's End emits the matching
// EvSpanEnd and observes the elapsed seconds into h (nil h skips the
// histogram). A nil tracer returns the zero Span — no events, no
// observation, no allocation.
//
// Spans emitted through one tracer must close in LIFO order for the Chrome
// B/E nesting to be well-formed; every caller in this repository opens and
// closes spans under the embedder's serialisation (the Manager's epoch body,
// the monitor's tick), which guarantees it.
func (t *Tracer) BeginPhase(phase string, h *Histogram) Span {
	if t == nil {
		return Span{}
	}
	start := t.emit(Event{Kind: EvSpanBegin, Stage: phase})
	return Span{t: t, h: h, phase: phase, start: start}
}

// End closes the span: emits EvSpanEnd and observes the duration. No-op on
// the zero Span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	end := s.t.emit(Event{Kind: EvSpanEnd, Stage: s.phase})
	s.h.Observe((end - s.start).Seconds())
}
