package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are nil-safe
// and lock-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// FloatCounter is a monotonically increasing float64 metric (e.g. joules,
// seconds). All methods are nil-safe and lock-free (CAS on the float bits).
type FloatCounter struct {
	bits atomic.Uint64
}

// Add adds v (negative or NaN additions are ignored to keep the counter
// monotone).
func (c *FloatCounter) Add(v float64) {
	if c == nil || !(v > 0) {
		return
	}
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current total.
func (c *FloatCounter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a float64 metric that can go up and down. All methods are
// nil-safe and lock-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// GaugeVec is a family of gauges keyed by one label value (e.g. per-session
// utility keyed by instance).
type GaugeVec struct {
	label string
	mu    sync.Mutex
	vals  map[string]*Gauge
}

// With returns the gauge for the label value, creating it on first use.
// Callers on hot paths should cache the returned *Gauge. Nil-safe: returns
// a nil *Gauge whose methods are no-ops.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.vals[value]
	if !ok {
		g = &Gauge{}
		v.vals[value] = g
	}
	return g
}

// Delete drops the gauge for the label value (e.g. on session exit).
func (v *GaugeVec) Delete(value string) {
	if v == nil {
		return
	}
	v.mu.Lock()
	delete(v.vals, value)
	v.mu.Unlock()
}

// CounterVec is a family of counters keyed by one label value (e.g.
// degraded epochs keyed by ladder rung).
type CounterVec struct {
	label string
	mu    sync.Mutex
	vals  map[string]*Counter
}

// With returns the counter for the label value, creating it on first use.
// Callers on hot paths should cache the returned *Counter. Nil-safe:
// returns a nil *Counter whose methods are no-ops.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.vals[value]
	if !ok {
		c = &Counter{}
		v.vals[value] = c
	}
	return c
}

// Histogram counts observations into fixed cumulative buckets (Prometheus
// classic histogram semantics: bucket i counts observations <= Buckets[i],
// plus an implicit +Inf bucket). Observations are lock-free.
type Histogram struct {
	buckets []float64 // sorted upper bounds, exclusive of +Inf
	counts  []atomic.Uint64
	inf     atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum, CAS-updated
}

// Observe records one observation. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.buckets, v)
	if idx < len(h.buckets) {
		h.counts[idx].Add(1)
	} else {
		h.inf.Add(1)
	}
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n + h.inf.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts,
// returning the upper bound of the bucket containing the rank — a
// conservative (pessimistic) estimate, which is what health thresholds
// want. Returns 0 with no observations, and +Inf when the rank falls in the
// implicit +Inf bucket. Nil-safe.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, ub := range h.buckets {
		cum += h.counts[i].Load()
		if cum >= rank {
			return ub
		}
	}
	return math.Inf(1)
}

// HistogramVec is a family of histograms sharing one bucket layout, keyed
// by one label value (e.g. epoch phase durations keyed by phase).
type HistogramVec struct {
	label   string
	buckets []float64
	mu      sync.Mutex
	vals    map[string]*Histogram
}

// With returns the histogram for the label value, creating it on first use.
// Callers on hot paths should cache the returned *Histogram. Nil-safe:
// returns a nil *Histogram whose methods are no-ops.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.vals[value]
	if !ok {
		h = &Histogram{buckets: v.buckets, counts: make([]atomic.Uint64, len(v.buckets))}
		v.vals[value] = h
	}
	return h
}

// metric is one registered instrument.
type metric struct {
	name string
	help string
	typ  string // "counter", "gauge", "histogram"
	c    *Counter
	cv   *CounterVec
	fc   *FloatCounter
	g    *Gauge
	gv   *GaugeVec
	h    *Histogram
	hv   *HistogramVec
}

// Registry holds named metrics and renders them in Prometheus text format
// or as an expvar map. The zero Registry is not usable; construct with
// NewRegistry. A nil *Registry hands out nil instruments, which are valid
// no-ops, so optional instrumentation needs no guards.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	order   []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

func (r *Registry) register(name, help, typ string) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := &metric{name: name, help: help, typ: typ}
	r.metrics[name] = m
	r.order = append(r.order, name)
	return m
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	m := r.register(name, help, "counter")
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// CounterVec returns the named one-label counter family, creating it on
// first use.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	m := r.register(name, help, "counter")
	if m.cv == nil {
		m.cv = &CounterVec{label: label, vals: make(map[string]*Counter)}
	}
	return m.cv
}

// FloatCounter returns the named float counter, creating it on first use.
func (r *Registry) FloatCounter(name, help string) *FloatCounter {
	if r == nil {
		return nil
	}
	m := r.register(name, help, "counter")
	if m.fc == nil {
		m.fc = &FloatCounter{}
	}
	return m.fc
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.register(name, help, "gauge")
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// GaugeVec returns the named one-label gauge family, creating it on first
// use.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	if r == nil {
		return nil
	}
	m := r.register(name, help, "gauge")
	if m.gv == nil {
		m.gv = &GaugeVec{label: label, vals: make(map[string]*Gauge)}
	}
	return m.gv
}

// Histogram returns the named histogram with the given bucket upper bounds
// (sorted ascending, +Inf implicit), creating it on first use.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	m := r.register(name, help, "histogram")
	if m.h == nil {
		bs := append([]float64(nil), buckets...)
		sort.Float64s(bs)
		m.h = &Histogram{buckets: bs, counts: make([]atomic.Uint64, len(bs))}
	}
	return m.h
}

// HistogramVec returns the named one-label histogram family with the given
// bucket upper bounds, creating it on first use.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	if r == nil {
		return nil
	}
	m := r.register(name, help, "histogram")
	if m.hv == nil {
		bs := append([]float64(nil), buckets...)
		sort.Float64s(bs)
		m.hv = &HistogramVec{label: label, buckets: bs, vals: make(map[string]*Histogram)}
	}
	return m.hv
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	ms := make([]*metric, len(names))
	for i, n := range names {
		ms[i] = r.metrics[n]
	}
	r.mu.Unlock()

	for _, m := range ms {
		if m.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ)
		switch {
		case m.c != nil:
			fmt.Fprintf(w, "%s %d\n", m.name, m.c.Value())
		case m.cv != nil:
			m.cv.mu.Lock()
			keys := make([]string, 0, len(m.cv.vals))
			for k := range m.cv.vals {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(w, "%s{%s=%q} %d\n", m.name, m.cv.label, k, m.cv.vals[k].Value())
			}
			m.cv.mu.Unlock()
		case m.fc != nil:
			fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.fc.Value()))
		case m.g != nil:
			fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.g.Value()))
		case m.gv != nil:
			m.gv.mu.Lock()
			keys := make([]string, 0, len(m.gv.vals))
			for k := range m.gv.vals {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(w, "%s{%s=%q} %s\n", m.name, m.gv.label, k, formatFloat(m.gv.vals[k].Value()))
			}
			m.gv.mu.Unlock()
		case m.h != nil:
			var cum uint64
			for i, ub := range m.h.buckets {
				cum += m.h.counts[i].Load()
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, formatFloat(ub), cum)
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, m.h.Count())
			fmt.Fprintf(w, "%s_sum %s\n", m.name, formatFloat(m.h.Sum()))
			fmt.Fprintf(w, "%s_count %d\n", m.name, m.h.Count())
		case m.hv != nil:
			m.hv.mu.Lock()
			keys := make([]string, 0, len(m.hv.vals))
			for k := range m.hv.vals {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				h := m.hv.vals[k]
				var cum uint64
				for i, ub := range h.buckets {
					cum += h.counts[i].Load()
					fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", m.name, m.hv.label, k, formatFloat(ub), cum)
				}
				fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", m.name, m.hv.label, k, h.Count())
				fmt.Fprintf(w, "%s_sum{%s=%q} %s\n", m.name, m.hv.label, k, formatFloat(h.Sum()))
				fmt.Fprintf(w, "%s_count{%s=%q} %d\n", m.name, m.hv.label, k, h.Count())
			}
			m.hv.mu.Unlock()
		}
	}
}

// formatFloat renders a float the way Prometheus clients do.
func formatFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

// snapshot returns a plain map view of every metric for expvar.
func (r *Registry) snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.order))
	for _, n := range r.order {
		ms = append(ms, r.metrics[n])
	}
	r.mu.Unlock()

	out := make(map[string]any, len(ms))
	for _, m := range ms {
		switch {
		case m.c != nil:
			out[m.name] = m.c.Value()
		case m.cv != nil:
			m.cv.mu.Lock()
			sub := make(map[string]uint64, len(m.cv.vals))
			for k, c := range m.cv.vals {
				sub[k] = c.Value()
			}
			m.cv.mu.Unlock()
			out[m.name] = sub
		case m.fc != nil:
			out[m.name] = m.fc.Value()
		case m.g != nil:
			out[m.name] = m.g.Value()
		case m.gv != nil:
			m.gv.mu.Lock()
			sub := make(map[string]float64, len(m.gv.vals))
			for k, g := range m.gv.vals {
				sub[k] = g.Value()
			}
			m.gv.mu.Unlock()
			out[m.name] = sub
		case m.h != nil:
			out[m.name] = map[string]any{"count": m.h.Count(), "sum": m.h.Sum()}
		case m.hv != nil:
			m.hv.mu.Lock()
			sub := make(map[string]any, len(m.hv.vals))
			for k, h := range m.hv.vals {
				sub[k] = map[string]any{"count": h.Count(), "sum": h.Sum()}
			}
			m.hv.mu.Unlock()
			out[m.name] = sub
		}
	}
	return out
}

// PublishExpvar publishes the registry under the given expvar name
// (served at /debug/vars). Publishing the same name twice is a no-op
// rather than the package-level panic, so tests can build many servers.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.snapshot() }))
}

// Default bucket layouts for the adaptation loop's latencies.
var (
	// LatencyBuckets suit sub-millisecond allocator runs up to slow
	// multi-application solves (seconds).
	LatencyBuckets = []float64{1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1}
	// JitterBuckets suit deviations from the 50 ms measure cadence.
	JitterBuckets = []float64{1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 2.5e-2, 5e-2}
	// IterationBuckets suit subgradient iteration counts (default budget 60):
	// warm-started solves should land in the low buckets, cold solves near
	// the budget.
	IterationBuckets = []float64{1, 2, 4, 8, 16, 32, 64}
)

// Metrics bundles the adaptation-loop instruments the resource manager and
// its embedders update. A nil *Metrics disables everything: the field
// selectors below are only reached through nil-guarded call sites, and each
// instrument is itself nil-safe.
type Metrics struct {
	// Registry backs the bundle (exported for /metrics handlers).
	Registry *Registry

	// Decisions counts pushed allocation decisions.
	Decisions *Counter
	// Reallocations counts system-wide allocation recomputations.
	Reallocations *Counter
	// Samples counts measurement samples fed to the RM.
	Samples *Counter
	// ExplorationSteps counts exploration configurations started.
	ExplorationSteps *Counter
	// Sessions gauges the registered session count.
	Sessions *Gauge
	// CoresGranted gauges the isolated physical cores currently granted.
	CoresGranted *Gauge
	// AllocLatency observes wall seconds per allocation (server only — the
	// clock is injected, simulated runs skip it).
	AllocLatency *Histogram
	// MeasureJitter observes the absolute deviation of the measure loop from
	// its cadence, in seconds.
	MeasureJitter *Histogram
	// SessionUtility and SessionPower gauge each session's smoothed
	// utility/power EMA, labelled by instance.
	SessionUtility *GaugeVec
	SessionPower   *GaugeVec

	// SessionsLive gauges the sessions currently in the live state (not
	// suspect, quarantined or gone).
	SessionsLive *Gauge
	// SessionsReaped counts sessions deregistered by the liveness reaper.
	SessionsReaped *Counter
	// SessionsQuarantined counts transitions into quarantine.
	SessionsQuarantined *Counter
	// SessionsReadmitted counts suspect/quarantined sessions that resumed.
	SessionsReadmitted *Counter
	// WriteTimeouts counts decision/probe writes that missed their
	// per-connection deadline or otherwise failed.
	WriteTimeouts *Counter
	// Reconnects counts session resumptions: registrations that replaced a
	// previously reaped or exited instance of the same application.
	Reconnects *Counter

	// SessionsRejected counts registrations refused by admission control
	// (MaxSessions cap).
	SessionsRejected *Counter
	// StoreSnapshotAge gauges seconds since the last snapshot was written
	// (on the embedder's clock; 0 until the first snapshot).
	StoreSnapshotAge *Gauge
	// StoreSnapshotBytes gauges the size of the last written snapshot.
	StoreSnapshotBytes *Gauge
	// StoreWALRecords counts records appended to the write-ahead log.
	StoreWALRecords *Counter
	// StoreReplaySeconds gauges how long the last recovery replay took.
	StoreReplaySeconds *Gauge
	// StoreCorruptions counts corruption events detected by the store
	// (torn WAL tails truncated, quarantined snapshots/WALs).
	StoreCorruptions *Counter

	// AllocCacheHits counts allocator solves served from the fingerprinted
	// solution cache; AllocCacheMisses counts solves that fell through to
	// the full pipeline; AllocCacheEvictions counts cached solutions dropped
	// at capacity.
	AllocCacheHits      *Counter
	AllocCacheMisses    *Counter
	AllocCacheEvictions *Counter
	// AllocWarmStartIters observes the subgradient iterations-to-convergence
	// of warm-started solves (cold solves are visible through the journal's
	// lambda_iters instead).
	AllocWarmStartIters *Histogram

	// EpochPhase observes the duration of each epoch flight-recorder phase
	// (snapshot, fingerprint, solve, repair, push, journal, measure and the
	// enclosing epoch), labelled by phase. Empty in simulation, like
	// AllocLatency.
	EpochPhase *HistogramVec
	// SessionEnergy gauges each active session's cumulative attributed
	// joules, labelled by instance.
	SessionEnergy *GaugeVec
	// EnergyTotal counts fleet joules attributed by this process (counter
	// semantics: not rewound or pre-loaded on warm restart — recovered totals
	// surface through the ledger and journal).
	EnergyTotal *FloatCounter
	// BudgetOverrunSeconds counts seconds the measured fleet power exceeded
	// the epoch's power budget.
	BudgetOverrunSeconds *FloatCounter
	// TracerDropped counts events evicted from the tracer ring.
	TracerDropped *Counter
	// JournalErrors counts journal records lost to write errors (the first
	// failing write and every record suppressed by the sticky error after it).
	JournalErrors *Counter

	// EpochDegraded counts epochs that fell off the primary solve onto a
	// degradation-ladder rung, labelled by rung (degraded-greedy,
	// degraded-stale, frozen).
	EpochDegraded *CounterVec
	// EpochFailures counts epochs whose primary solve failed or blew its
	// deadline budget — every degraded epoch and every hard allocator error.
	EpochFailures *Counter
	// EpochsCoalesced counts mutating events whose epoch was deferred into a
	// shared coalesced solve instead of triggering its own (events minus
	// solves; see internal/core coalesce.go).
	EpochsCoalesced *Counter
	// StoreRetries counts transient durable-state write errors absorbed by
	// the store's retry/backoff path.
	StoreRetries *Counter

	// ClusterMachinesAlive gauges fleet machines currently alive (only set
	// when this process runs a cluster coordinator).
	ClusterMachinesAlive *Gauge
	// ClusterPlacements counts sessions placed onto a machine by the fleet
	// coordinator, first placements and migration re-adds alike.
	ClusterPlacements *Counter
	// ClusterPlacementsRejected counts placements refused by worst-case
	// admission control (no machine had power headroom).
	ClusterPlacementsRejected *Counter
	// ClusterMigrations counts completed session migrations between
	// machines (hot-machine rebalance or dying-machine drain).
	ClusterMigrations *Counter
	// ClusterMachineDeaths counts machines declared dead after missed
	// heartbeats.
	ClusterMachineDeaths *Counter
	// ClusterFailovers counts standby-coordinator promotions after the
	// primary died.
	ClusterFailovers *Counter
}

// NewMetrics creates the standard instrument bundle on the registry.
func NewMetrics(r *Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Registry:         r,
		Decisions:        r.Counter("harp_decisions_total", "Allocation decisions pushed to applications."),
		Reallocations:    r.Counter("harp_reallocations_total", "System-wide allocation recomputations."),
		Samples:          r.Counter("harp_measure_samples_total", "Measurement samples fed to the resource manager."),
		ExplorationSteps: r.Counter("harp_exploration_steps_total", "Exploration configurations started."),
		Sessions:         r.Gauge("harp_sessions", "Registered application sessions."),
		CoresGranted:     r.Gauge("harp_cores_granted", "Isolated physical cores currently granted."),
		AllocLatency:     r.Histogram("harp_allocation_seconds", "Wall time per system-wide allocation.", LatencyBuckets),
		MeasureJitter:    r.Histogram("harp_measure_jitter_seconds", "Absolute deviation of the measure loop from its cadence.", JitterBuckets),
		SessionUtility:   r.GaugeVec("harp_session_utility", "Smoothed per-session utility EMA.", "instance"),
		SessionPower:     r.GaugeVec("harp_session_power_watts", "Smoothed per-session power EMA.", "instance"),

		SessionsLive:        r.Gauge("harp_sessions_live", "Sessions currently in the live state."),
		SessionsReaped:      r.Counter("harp_sessions_reaped_total", "Sessions deregistered by the liveness reaper."),
		SessionsQuarantined: r.Counter("harp_sessions_quarantined_total", "Transitions of sessions into quarantine."),
		SessionsReadmitted:  r.Counter("harp_sessions_readmitted_total", "Suspect or quarantined sessions that resumed reporting."),
		WriteTimeouts:       r.Counter("harp_write_timeouts_total", "Connection writes that missed their deadline or failed."),
		Reconnects:          r.Counter("harp_session_reconnects_total", "Registrations that resumed a previously ended instance."),

		SessionsRejected:   r.Counter("harp_sessions_rejected_total", "Registrations refused by admission control."),
		StoreSnapshotAge:   r.Gauge("harp_store_snapshot_age_seconds", "Seconds since the last durable-state snapshot."),
		StoreSnapshotBytes: r.Gauge("harp_store_snapshot_bytes", "Size of the last durable-state snapshot."),
		StoreWALRecords:    r.Counter("harp_store_wal_records_total", "Records appended to the durable-state write-ahead log."),
		StoreReplaySeconds: r.Gauge("harp_store_replay_seconds", "Duration of the last durable-state recovery replay."),
		StoreCorruptions:   r.Counter("harp_store_corruptions_total", "Corruption events detected in the durable-state store."),

		AllocCacheHits:      r.Counter("harp_alloc_cache_hits_total", "Allocator solves served from the fingerprinted solution cache."),
		AllocCacheMisses:    r.Counter("harp_alloc_cache_misses_total", "Allocator solves that missed the solution cache."),
		AllocCacheEvictions: r.Counter("harp_alloc_cache_evictions_total", "Cached allocator solutions evicted at capacity."),
		AllocWarmStartIters: r.Histogram("harp_alloc_warm_start_iters", "Subgradient iterations to convergence for warm-started solves.", IterationBuckets),

		EpochPhase:           r.HistogramVec("harp_epoch_phase_seconds", "Wall time per epoch flight-recorder phase.", "phase", LatencyBuckets),
		SessionEnergy:        r.GaugeVec("harp_session_energy_joules", "Cumulative attributed energy per active session.", "instance"),
		EnergyTotal:          r.FloatCounter("harp_energy_joules_total", "Fleet energy attributed by this process."),
		BudgetOverrunSeconds: r.FloatCounter("harp_budget_overrun_seconds_total", "Seconds the measured fleet power exceeded the epoch power budget."),
		TracerDropped:        r.Counter("harp_tracer_dropped_total", "Events evicted from the tracer ring."),
		JournalErrors:        r.Counter("harp_journal_errors_total", "Journal records lost to write errors."),

		EpochDegraded:   r.CounterVec("harp_epoch_degraded_total", "Epochs resolved by a degradation-ladder rung.", "rung"),
		EpochFailures:   r.Counter("harp_epoch_failures_total", "Epochs whose primary solve failed or exceeded its deadline budget."),
		EpochsCoalesced: r.Counter("harp_epochs_coalesced_total", "Mutating events whose epoch was deferred into a shared coalesced solve."),
		StoreRetries:    r.Counter("harp_store_retries_total", "Transient durable-state write errors absorbed by retry."),

		ClusterMachinesAlive:      r.Gauge("harp_cluster_machines_alive", "Fleet machines currently alive."),
		ClusterPlacements:         r.Counter("harp_cluster_placements_total", "Sessions placed onto a machine by the fleet coordinator."),
		ClusterPlacementsRejected: r.Counter("harp_cluster_placements_rejected_total", "Placements refused by worst-case admission control."),
		ClusterMigrations:         r.Counter("harp_cluster_migrations_total", "Completed session migrations between machines."),
		ClusterMachineDeaths:      r.Counter("harp_cluster_machine_deaths_total", "Machines declared dead after missed heartbeats."),
		ClusterFailovers:          r.Counter("harp_cluster_failovers_total", "Standby coordinator promotions after primary death."),
	}
}
