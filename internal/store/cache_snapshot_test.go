package store

import (
	"reflect"
	"testing"

	"github.com/harp-rm/harp/internal/alloc"
	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
)

// TestAllocCacheSnapshotRoundTrip pins the durable form of the solution
// cache: cached solutions survive EncodeSnapshot/DecodeSnapshot exactly —
// fingerprint, allocations (with concrete core grants) and solve stats — so a
// warm-restarted RM can serve its first epoch from the persisted cache.
func TestAllocCacheSnapshotRoundTrip(t *testing.T) {
	p := platform.RaptorLake()
	rv := platform.NewResourceVector(p)
	rv.Counts[0][0] = 2
	st := NewState()
	st.Generation = 3
	st.AllocCache = []alloc.CachedSolution{{
		Key: alloc.Fingerprint{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210},
		Allocations: []alloc.Allocation{{
			ID:     "cg.C",
			Point:  opoint.OperatingPoint{Vector: rv, Utility: 100, Power: 10, Measured: true},
			Grants: []alloc.CoreGrant{{Core: 0, Threads: 1}, {Core: 1, Threads: 1}},
		}},
		Stats: alloc.Stats{Apps: 1, Candidates: 7, LambdaIters: 12, Source: alloc.SourceCold},
	}}

	raw, err := EncodeSnapshot(st)
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	got, err := DecodeSnapshot(raw)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if !reflect.DeepEqual(st.AllocCache, got.AllocCache) {
		t.Fatalf("cache round trip diverged:\nwant %+v\ngot  %+v", st.AllocCache, got.AllocCache)
	}

	// Clone shares entries (immutable by contract) but not the slice header.
	cl := got.Clone()
	if !reflect.DeepEqual(cl.AllocCache, got.AllocCache) {
		t.Fatal("Clone lost the cache")
	}
	cl.AllocCache = append(cl.AllocCache[:0:0], cl.AllocCache...)
	cl.AllocCache[0].Stats.Apps = 99
	if got.AllocCache[0].Stats.Apps != 1 {
		t.Fatal("mutating a cloned copy reached the original")
	}

	// An empty cache stays omitted: old snapshots decode with a nil slice.
	st.AllocCache = nil
	raw2, err := EncodeSnapshot(st)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := DecodeSnapshot(raw2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.AllocCache != nil {
		t.Fatalf("empty cache decoded as %+v", got2.AllocCache)
	}
}
