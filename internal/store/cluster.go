package store

// Cluster coordinator state codec. The fleet coordinator periodically ships
// its placement registry to the standby as one self-describing blob; on
// failover the standby decodes the last shipment and reconciles it against
// the machines that are still alive. The framing mirrors the durable-state
// snapshot (magic | version | length | JSON | CRC, big-endian) so the same
// corruption taxonomy — short blob, bad magic, bad version, bad length, CRC
// mismatch, bad JSON — maps onto the same ErrCorrupt sentinel.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"github.com/harp-rm/harp/internal/opoint"
)

// clusterMagic distinguishes coordinator shipments from RM snapshots; a
// blob fed to the wrong decoder fails on the magic, not deep in the JSON.
const clusterMagic = "HARPCLUS"

// ClusterSession is everything the coordinator must remember to re-home a
// session onto a fresh machine: the registration tuple plus the learned
// table and last announced phase to replay (the PR 3 reconnect contract).
type ClusterSession struct {
	Instance   string        `json:"instance"`
	App        string        `json:"app"`
	Adaptivity string        `json:"adaptivity"`
	OwnUtility bool          `json:"own_utility,omitempty"`
	Phase      string        `json:"phase,omitempty"`
	Machine    string        `json:"machine"`
	DemandW    float64       `json:"demand_w"`
	Table      *opoint.Table `json:"table,omitempty"`
}

// ClusterMachine is the coordinator's view of one fleet member.
type ClusterMachine struct {
	ID    string  `json:"id"`
	CapW  float64 `json:"cap_w"`
	Alive bool    `json:"alive"`
}

// ClusterState is the coordinator state shipped to the standby. Machines
// and Sessions are kept sorted by the coordinator so encodings of the same
// logical state are byte-identical (the chaos suites compare journals and
// shipments across same-seed runs).
type ClusterState struct {
	Epoch        uint64           `json:"epoch"`
	Tick         uint64           `json:"tick"`
	FleetBudgetW float64          `json:"fleet_budget_w"`
	Machines     []ClusterMachine `json:"machines"`
	Sessions     []ClusterSession `json:"sessions"`
}

// EncodeClusterState renders the shipment bytes for the coordinator state.
func EncodeClusterState(cs *ClusterState) ([]byte, error) {
	payload, err := json.Marshal(cs)
	if err != nil {
		return nil, err
	}
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("cluster state payload %d bytes exceeds limit", len(payload))
	}
	out := make([]byte, 0, len(clusterMagic)+12+len(payload))
	out = append(out, clusterMagic...)
	out = binary.BigEndian.AppendUint32(out, Version)
	out = binary.BigEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return out, nil
}

// DecodeClusterState parses shipment bytes. Any structural defect returns
// an error wrapping ErrCorrupt, like DecodeSnapshot.
func DecodeClusterState(raw []byte) (*ClusterState, error) {
	hdrLen := len(clusterMagic) + 8
	if len(raw) < hdrLen+4 {
		return nil, fmt.Errorf("%w: cluster state too short (%d bytes)", ErrCorrupt, len(raw))
	}
	if string(raw[:len(clusterMagic)]) != clusterMagic {
		return nil, fmt.Errorf("%w: bad cluster state magic", ErrCorrupt)
	}
	ver := binary.BigEndian.Uint32(raw[len(clusterMagic):])
	if ver != Version {
		return nil, fmt.Errorf("%w: unsupported cluster state version %d", ErrCorrupt, ver)
	}
	n := binary.BigEndian.Uint32(raw[len(clusterMagic)+4:])
	if n > MaxPayload || int64(n) != int64(len(raw)-hdrLen-4) {
		return nil, fmt.Errorf("%w: cluster state length %d does not match blob", ErrCorrupt, n)
	}
	payload := raw[hdrLen : hdrLen+int(n)]
	want := binary.BigEndian.Uint32(raw[hdrLen+int(n):])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("%w: cluster state CRC mismatch", ErrCorrupt)
	}
	cs := &ClusterState{}
	if err := json.Unmarshal(payload, cs); err != nil {
		return nil, fmt.Errorf("%w: cluster state payload: %v", ErrCorrupt, err)
	}
	return cs, nil
}
