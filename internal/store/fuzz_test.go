package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// validWAL builds a well-formed WAL byte stream from JSON payloads, for
// fuzz seeds.
func validWAL(payloads ...string) []byte {
	var buf bytes.Buffer
	buf.WriteString(walMagic)
	var v [4]byte
	binary.BigEndian.PutUint32(v[:], Version)
	buf.Write(v[:])
	for _, p := range payloads {
		var hdr [8]byte
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(p)))
		binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE([]byte(p)))
		buf.Write(hdr[:])
		buf.WriteString(p)
	}
	return buf.Bytes()
}

// FuzzSnapshot throws arbitrary bytes at the snapshot decoder: it must
// never panic, and anything it accepts must re-encode to bytes it accepts
// again with the same structural content.
func FuzzSnapshot(f *testing.F) {
	good, _ := EncodeSnapshot(&State{
		Generation: 3,
		WALSeq:     7,
		Seq:        42,
		Sessions:   []SessionState{{Instance: "ep/1", App: "ep", Adaptivity: "scalable"}},
	})
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte(snapshotMagic))
	if len(good) > 6 {
		trunc := append([]byte(nil), good[:len(good)-6]...)
		f.Add(trunc)
		flip := append([]byte(nil), good...)
		flip[len(flip)/2] ^= 0x10
		f.Add(flip)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		re, err := EncodeSnapshot(st)
		if err != nil {
			t.Fatalf("accepted state failed to re-encode: %v", err)
		}
		st2, err := DecodeSnapshot(re)
		if err != nil {
			t.Fatalf("re-encoded snapshot rejected: %v", err)
		}
		if st2.Generation != st.Generation || st2.WALSeq != st.WALSeq || st2.Seq != st.Seq ||
			len(st2.Sessions) != len(st.Sessions) || len(st2.Tables) != len(st.Tables) {
			t.Fatalf("round trip changed state: %+v vs %+v", st, st2)
		}
	})
}

// FuzzWAL throws arbitrary bytes at the WAL replayer: it must never panic,
// and replaying any prefix must apply a (not necessarily strict) prefix of
// the records the full stream applies — the torn-tail guarantee.
func FuzzWAL(f *testing.F) {
	f.Add(validWAL())
	f.Add(validWAL(
		`{"lsn":1,"kind":"register","instance":"ep/1","app":"ep"}`,
		`{"lsn":2,"kind":"phase","instance":"ep/1","phase":"x"}`,
	))
	// Duplicate records (same LSN twice) — the skip logic's home turf.
	f.Add(validWAL(
		`{"lsn":1,"kind":"register","instance":"ep/1","app":"ep"}`,
		`{"lsn":1,"kind":"register","instance":"ep/1","app":"ep"}`,
	))
	f.Add([]byte{})
	f.Add([]byte(walMagic))
	tail := validWAL(`{"lsn":1,"kind":"phase"}`)
	f.Add(tail[:len(tail)-2])
	f.Fuzz(func(t *testing.T, data []byte) {
		var full []Record
		n, valid, _ := ReplayWAL(bytes.NewReader(data), func(r Record) { full = append(full, r) })
		if n != len(full) {
			t.Fatalf("record count %d != applied %d", n, len(full))
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid offset %d out of range [0,%d]", valid, len(data))
		}
		// Replay of the valid prefix alone must be clean and identical.
		if valid > 0 {
			var pre []Record
			pn, pvalid, err := ReplayWAL(bytes.NewReader(data[:valid]), func(r Record) { pre = append(pre, r) })
			if err != nil || pn != n || pvalid != valid {
				t.Fatalf("valid prefix did not replay cleanly: n=%d/%d valid=%d/%d err=%v", pn, n, pvalid, valid, err)
			}
		}
		// Folding the records into a state must not panic either.
		st := NewState()
		for _, r := range full {
			st.Apply(r)
		}
	})
}
