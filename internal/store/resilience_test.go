package store

import (
	"testing"
	"time"

	"github.com/harp-rm/harp/internal/telemetry"
)

// openQuiet opens a store with backoff sleeps disabled and a metrics bundle
// attached, so retry tests run instantly and can assert the counters.
func openQuiet(t *testing.T, dir string) (*Store, *telemetry.Metrics) {
	t.Helper()
	mt := telemetry.NewMetrics(telemetry.NewRegistry())
	s, err := Open(dir, Options{Metrics: mt})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s.sleep = func(time.Duration) {}
	return s, mt
}

func TestRetryAbsorbsTransientWriteFaults(t *testing.T) {
	dir := t.TempDir()
	s, mt := openQuiet(t, dir)

	// Two injected faults sit inside one append's four attempts: the write
	// succeeds on the third try, counts two retries, and never degrades.
	s.InjectIOFaults(2)
	if err := s.Append(Record{Kind: RecRegister, Instance: "ep/1", App: "ep", Seq: 1}); err != nil {
		t.Fatalf("Append under transient faults: %v", err)
	}
	if got := mt.StoreRetries.Value(); got != 2 {
		t.Errorf("harp_store_retries_total = %d, want 2", got)
	}
	if s.Degraded() {
		t.Error("store degraded after an absorbed transient fault")
	}
	if err := s.Err(); err != nil {
		t.Errorf("sticky error after absorbed fault: %v", err)
	}
	s.Close()

	// The rewound-and-retried record must replay cleanly: no interleaved
	// garbage from the failed attempts.
	s2, _ := openQuiet(t, dir)
	defer s2.Close()
	rec := s2.Recovery()
	if rec.WALRecords != 1 || rec.Corruptions != 0 {
		t.Fatalf("recovery after retried write = %+v, want 1 clean record", rec)
	}
}

func TestWriteExhaustionEntersDegradedModeAndHeals(t *testing.T) {
	dir := t.TempDir()
	s, _ := openQuiet(t, dir)
	defer s.Close()
	tr := telemetry.NewTracer(16)
	s.tracer = tr

	// Four faults exhaust one append's attempts: the store enters
	// durability-degraded mode but the call returns (allocation goes on).
	s.InjectIOFaults(writeAttempts)
	if err := s.Append(Record{Kind: RecRegister, Instance: "ep/1", App: "ep", Seq: 1}); err == nil {
		t.Fatal("Append with exhausted retries returned nil")
	}
	if !s.Degraded() {
		t.Fatal("store not degraded after retry exhaustion")
	}

	// Snapshots are suspended while degraded: the call is a silent no-op
	// so the epoch loop never blocks on the broken disk.
	if err := s.WriteSnapshot(&State{Seq: 1}); err != nil {
		t.Fatalf("WriteSnapshot while degraded: %v", err)
	}
	if s.Recovery().ColdStart != true {
		t.Fatalf("recovery = %+v", s.Recovery())
	}

	// The disk recovers: the next successful append heals the store.
	if err := s.Append(Record{Kind: RecPhase, Instance: "ep/1", Phase: "solve", Seq: 2}); err != nil {
		t.Fatalf("Append after fault cleared: %v", err)
	}
	if s.Degraded() {
		t.Error("store still degraded after a successful write")
	}
	if err := s.WriteSnapshot(&State{Seq: 2}); err != nil {
		t.Fatalf("WriteSnapshot after healing: %v", err)
	}

	// Both transitions traced, once each: degraded on exhaustion, healed on
	// the first successful write afterwards.
	var stages []string
	for _, ev := range tr.Events() {
		if ev.Kind == telemetry.EvStoreDegraded {
			stages = append(stages, ev.Stage)
		}
	}
	if len(stages) != 2 || stages[0] != "degraded" || stages[1] != "healed" {
		t.Errorf("EvStoreDegraded stages = %v, want [degraded healed]", stages)
	}
}

func TestDegradedStoreKeepsServingAppends(t *testing.T) {
	dir := t.TempDir()
	s, mt := openQuiet(t, dir)

	// A long outage: every append fails, but none of them panics or wedges,
	// and each keeps probing the disk (counting retries).
	s.InjectIOFaults(writeAttempts * 3)
	for seq := 1; seq <= 3; seq++ {
		_ = s.Append(Record{Kind: RecPhase, Instance: "ep/1", Phase: "p", Seq: seq})
	}
	if !s.Degraded() {
		t.Fatal("store not degraded during outage")
	}
	if got, want := mt.StoreRetries.Value(), uint64((writeAttempts-1)*3); got != want {
		t.Errorf("harp_store_retries_total = %d, want %d", got, want)
	}

	// Recovery: appends succeed again and the healed store snapshots.
	if err := s.Append(Record{Kind: RecPhase, Instance: "ep/1", Phase: "q", Seq: 4}); err != nil {
		t.Fatalf("Append after outage: %v", err)
	}
	if s.Degraded() {
		t.Error("store still degraded after outage ended")
	}
	s.Close()

	// The WAL holds exactly the successful records — the rewind kept the
	// failed attempts from leaving partial bytes behind.
	s2, _ := openQuiet(t, dir)
	defer s2.Close()
	rec := s2.Recovery()
	if rec.Corruptions != 0 {
		t.Fatalf("recovery found %d corruptions after outage", rec.Corruptions)
	}
}
