package store

import (
	"errors"
	"testing"

	"github.com/harp-rm/harp/internal/opoint"
)

func clusterFixture(t *testing.T) *ClusterState {
	t.Helper()
	p1 := pt(t, 120, 14, 2)
	return &ClusterState{
		Epoch:        7,
		Tick:         41,
		FleetBudgetW: 300,
		Machines: []ClusterMachine{
			{ID: "m0", CapW: 150, Alive: true},
			{ID: "m1", CapW: 150, Alive: false},
		},
		Sessions: []ClusterSession{
			{
				Instance:   "mg/1",
				App:        "mg",
				Adaptivity: "scalable",
				Phase:      "solve",
				Machine:    "m0",
				DemandW:    14,
				Table:      &opoint.Table{App: "mg", Points: []opoint.OperatingPoint{p1}},
			},
			{Instance: "ep/2", App: "ep", Adaptivity: "static", Machine: "m0", DemandW: 9},
		},
	}
}

func TestClusterStateRoundTrip(t *testing.T) {
	cs := clusterFixture(t)
	raw, err := EncodeClusterState(cs)
	if err != nil {
		t.Fatalf("EncodeClusterState: %v", err)
	}
	got, err := DecodeClusterState(raw)
	if err != nil {
		t.Fatalf("DecodeClusterState: %v", err)
	}
	if got.Epoch != 7 || got.Tick != 41 || got.FleetBudgetW != 300 {
		t.Fatalf("header fields = %+v", got)
	}
	if len(got.Machines) != 2 || got.Machines[1].Alive || got.Machines[0].CapW != 150 {
		t.Fatalf("machines = %+v", got.Machines)
	}
	if len(got.Sessions) != 2 || got.Sessions[0].Machine != "m0" || got.Sessions[0].Phase != "solve" {
		t.Fatalf("sessions = %+v", got.Sessions)
	}
	if got.Sessions[0].Table == nil || got.Sessions[0].Table.MeasuredCount() != 1 {
		t.Fatalf("session table did not survive the round trip: %+v", got.Sessions[0].Table)
	}
	if got.Sessions[1].Table != nil {
		t.Fatalf("tableless session grew a table: %+v", got.Sessions[1].Table)
	}
	// Same logical state must encode to the same bytes (the standby compares
	// shipments across same-seed runs).
	raw2, err := EncodeClusterState(cs)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if string(raw) != string(raw2) {
		t.Fatalf("encoding is not deterministic")
	}
}

func TestClusterStateRejectsCorruption(t *testing.T) {
	raw, err := EncodeClusterState(clusterFixture(t))
	if err != nil {
		t.Fatalf("EncodeClusterState: %v", err)
	}
	for name, mangle := range map[string]func([]byte) []byte{
		"short":       func(b []byte) []byte { return b[:8] },
		"bad-magic":   func(b []byte) []byte { b[0] ^= 0xff; return b },
		"bad-version": func(b []byte) []byte { b[len(clusterMagic)+3] ^= 0xff; return b },
		"bad-length":  func(b []byte) []byte { b[len(clusterMagic)+7] ^= 0x01; return b },
		"bit-flip":    func(b []byte) []byte { b[len(clusterMagic)+20] ^= 0x10; return b },
		"truncated":   func(b []byte) []byte { return b[:len(b)-5] },
		"snapshot-magic-mismatch": func(b []byte) []byte {
			copy(b, snapshotMagic)
			return b
		},
	} {
		t.Run(name, func(t *testing.T) {
			cp := append([]byte(nil), raw...)
			if _, err := DecodeClusterState(mangle(cp)); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("want ErrCorrupt, got %v", err)
			}
		})
	}
}
