package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/telemetry"
)

// On-disk layout inside the state directory:
//
//	snapshot.harp   magic "HARPSNAP" | version u32 | length u32 | JSON | crc32 u32
//	wal.log         magic "HARPWAL\n" | version u32, then per record:
//	                length u32 | crc32 u32 | JSON payload
//	quarantine-N/   corrupt files moved aside by recovery (never deleted)
//
// All integers are big-endian; CRCs are IEEE over the JSON payload alone.
// The snapshot is written to a temp file, fsynced, then renamed — readers
// see the old snapshot or the new one, never a torn mix. WAL appends are
// plain writes (no per-record fsync): the layer targets process crashes
// (kill -9), where completed write()s survive in the page cache.
const (
	snapshotName  = "snapshot.harp"
	walName       = "wal.log"
	snapshotMagic = "HARPSNAP"
	walMagic      = "HARPWAL\n"
	// Version is the on-disk format version of both files.
	Version = 1
	// MaxPayload bounds one snapshot or WAL record payload (a table of a few
	// hundred points is ~100 KiB; 64 MiB is far above any legitimate state).
	MaxPayload = 64 << 20
)

// ErrCorrupt wraps any decode failure in the snapshot or WAL.
var ErrCorrupt = errors.New("store: corrupt")

// errInjected is the transient write error produced by the InjectIOFaults
// test seam.
var errInjected = errors.New("store: injected I/O fault")

// Retry policy for transient write errors: a handful of attempts with a
// small capped exponential backoff. The total worst-case stall (~a few ms)
// stays well inside one 50 ms adaptation tick, so absorbing a transient
// disk hiccup never costs an epoch.
const (
	writeAttempts  = 4
	retryBaseDelay = 500 * time.Microsecond
	retryMaxDelay  = 5 * time.Millisecond
)

// Recovery describes what Open found and did.
type Recovery struct {
	// Generation is the store generation after recovery: the recovered
	// generation + 1 (1 on a cold start of a fresh directory).
	Generation uint64
	// ColdStart is true when no usable prior state existed (fresh directory
	// or fully corrupt store).
	ColdStart bool
	// SnapshotLoaded is true when a valid snapshot was read.
	SnapshotLoaded bool
	// WALRecords counts the WAL records replayed on top of the snapshot.
	WALRecords int
	// TruncatedBytes counts torn-tail bytes dropped from the WAL.
	TruncatedBytes int64
	// Corruptions counts corruption events (torn tails, quarantined files).
	Corruptions int
	// Quarantined is the directory corrupt files were moved into ("" if none).
	Quarantined string
	// Err is the corruption that forced a fallback (nil on a clean recovery;
	// a recovery can succeed with Err set — e.g. a quarantined WAL with a
	// healthy snapshot).
	Err error
	// Duration is how long recovery took.
	Duration time.Duration
}

// Store is the durable-state handle. Append and WriteSnapshot serialise
// internally, so the embedder's Manager lock and a shutdown path may race
// safely. The recovered state is fixed at Open; mutations flow in through
// Append.
type Store struct {
	dir     string
	metrics *telemetry.Metrics
	tracer  *telemetry.Tracer

	mu         sync.Mutex
	wal        *os.File
	lsn        uint64 // last assigned LSN
	generation uint64
	recovered  *State
	recovery   Recovery
	stickyErr  error
	walRecords int
	lastSnap   time.Time
	closed     bool

	// degraded is durability-degraded mode: write retries exhausted, so
	// snapshots are suspended and appends keep probing until one succeeds
	// (which heals the store). The RM keeps allocating throughout.
	degraded    bool
	degradedErr error
	// injectFail makes the next N physical writes fail with a transient
	// error (the store-io fault seam; see InjectIOFaults).
	injectFail int
	// sleep is the backoff sleeper, injectable so tests need not wait.
	sleep func(time.Duration)
}

// Options configures Open.
type Options struct {
	// Metrics receives harp_store_* updates (nil disables).
	Metrics *telemetry.Metrics
	// Tracer receives EvStoreDegraded transition events when the store
	// enters or heals durability-degraded mode (nil disables).
	Tracer *telemetry.Tracer
}

// Open recovers the state directory (creating it if needed) and returns a
// store ready for appends. Recovery ladder, most- to least-preferred:
//
//  1. valid snapshot + WAL (a torn tail is truncated to the last valid
//     record) → warm start;
//  2. valid snapshot, unreadable WAL → the WAL is quarantined, warm start
//     from the snapshot alone;
//  3. unreadable snapshot → both files are quarantined, cold start.
//
// Open never fails on corruption — only on I/O errors (unwritable
// directory). The caller learns what happened from Recovery().
func Open(dir string, opts Options) (*Store, error) {
	start := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, metrics: opts.Metrics, tracer: opts.Tracer, sleep: time.Sleep}

	st := NewState()
	snapPath := filepath.Join(dir, snapshotName)
	walPath := filepath.Join(dir, walName)

	snapRaw, snapErr := os.ReadFile(snapPath)
	haveSnap := snapErr == nil
	if haveSnap {
		dec, err := DecodeSnapshot(snapRaw)
		if err != nil {
			// Ladder rung 3: the snapshot is the root of trust; if it is
			// unreadable the WAL's base state is unknown, so both go to
			// quarantine and the store cold-starts.
			s.recovery.Err = err
			s.recovery.Corruptions++
			s.quarantine(snapPath, walPath)
			st = NewState()
			s.recovery.ColdStart = true
		} else {
			st = dec
			s.recovery.SnapshotLoaded = true
		}
	}

	if s.recovery.Quarantined == "" {
		if walRaw, err := os.Open(walPath); err == nil {
			n, valid, replayErr := ReplayWAL(walRaw, func(r Record) { st.Apply(r) })
			size, _ := walRaw.Seek(0, io.SeekEnd)
			walRaw.Close()
			s.recovery.WALRecords = n
			switch {
			case replayErr == nil:
				// clean
			case valid > 0:
				// Ladder rung 1: the header was valid, so the failure is a
				// torn or truncated tail — keep everything up to the last
				// valid record and drop the rest.
				s.recovery.TruncatedBytes = size - valid
				s.recovery.Corruptions++
				s.recovery.Err = replayErr
				if err := os.Truncate(walPath, valid); err != nil {
					return nil, fmt.Errorf("store: truncate torn WAL tail: %w", err)
				}
			default:
				// Ladder rung 2: not even the header decodes — quarantine the
				// WAL, keep the snapshot state.
				s.recovery.Corruptions++
				s.recovery.Err = replayErr
				s.quarantine(walPath)
				if !haveSnap {
					s.recovery.ColdStart = true
				}
			}
		} else if !haveSnap {
			s.recovery.ColdStart = true
		}
	}

	s.generation = st.Generation + 1
	s.lsn = st.WALSeq
	st.Generation = s.generation
	s.recovered = st
	s.recovery.Generation = s.generation

	wal, err := openWALForAppend(walPath)
	if err != nil {
		return nil, err
	}
	s.wal = wal

	// Boot checkpoint: fold the recovered state (with its bumped generation)
	// into a fresh snapshot right away. This makes the generation durable
	// even if the process dies before its first graceful snapshot, heals a
	// truncated WAL permanently, and starts every run with an empty WAL.
	if err := s.WriteSnapshot(s.recovered); err != nil {
		return nil, fmt.Errorf("store: boot checkpoint: %w", err)
	}

	s.recovery.Duration = time.Since(start)
	if m := s.metrics; m != nil {
		m.StoreReplaySeconds.Set(s.recovery.Duration.Seconds())
		m.StoreCorruptions.Add(uint64(s.recovery.Corruptions))
	}
	return s, nil
}

// quarantine moves the given files into a fresh quarantine-N subdirectory
// for post-mortem inspection. Failures are folded into the sticky error —
// recovery proceeds regardless (the files will be overwritten).
func (s *Store) quarantine(paths ...string) {
	var qdir string
	for n := 1; ; n++ {
		qdir = filepath.Join(s.dir, fmt.Sprintf("quarantine-%d", n))
		if err := os.Mkdir(qdir, 0o755); err == nil {
			break
		} else if !os.IsExist(err) {
			s.stickyErr = err
			return
		}
	}
	s.recovery.Quarantined = qdir
	for _, p := range paths {
		if _, err := os.Stat(p); err != nil {
			continue
		}
		if err := os.Rename(p, filepath.Join(qdir, filepath.Base(p))); err != nil {
			s.stickyErr = err
		}
	}
}

// openWALForAppend opens (or creates) the WAL positioned for appends,
// writing the header if the file is new.
func openWALForAppend(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	if fi.Size() == 0 {
		var hdr [12]byte
		copy(hdr[:8], walMagic)
		binary.BigEndian.PutUint32(hdr[8:], Version)
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	return f, nil
}

// RecoveredState returns the state recovered at Open. The caller owns it
// (Open built it fresh); it already carries the new generation.
func (s *Store) RecoveredState() *State { return s.recovered }

// Recovery returns the recovery report.
func (s *Store) Recovery() Recovery { return s.recovery }

// Generation returns the store generation (restart counter).
func (s *Store) Generation() uint64 { return s.generation }

// Dir returns the state directory.
func (s *Store) Dir() string { return s.dir }

// Err returns the sticky append/quarantine error, if any. The store keeps
// accepting calls after an error (the RM must not die because its disk
// did), but the embedder can surface it.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stickyErr
}

// InjectIOFaults arms the store-io fault seam: the next n physical writes
// (WAL record appends, snapshot files) fail with a transient error before
// touching the disk. Used by the chaos harnesses to exercise the
// retry/backoff path and durability-degraded mode deterministically.
func (s *Store) InjectIOFaults(n int) {
	s.mu.Lock()
	s.injectFail = n
	s.mu.Unlock()
}

// Degraded reports whether the store is in durability-degraded mode:
// write retries exhausted, snapshots suspended, appends still probing. A
// later successful write heals it.
func (s *Store) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// failInjected consumes one armed injected fault. s.mu held.
func (s *Store) failInjected() error {
	if s.injectFail > 0 {
		s.injectFail--
		return errInjected
	}
	return nil
}

// retryWrite runs op under the retry-with-capped-backoff policy, counting
// every retried attempt in harp_store_retries_total. Success heals
// durability-degraded mode; exhaustion enters it. s.mu held throughout —
// the worst-case backoff is bounded far below one adaptation tick.
func (s *Store) retryWrite(op func() error) error {
	delay := retryBaseDelay
	var err error
	for attempt := 0; attempt < writeAttempts; attempt++ {
		if attempt > 0 {
			if m := s.metrics; m != nil {
				m.StoreRetries.Inc()
			}
			s.sleep(delay)
			if delay *= 2; delay > retryMaxDelay {
				delay = retryMaxDelay
			}
		}
		if err = s.failInjected(); err == nil {
			err = op()
		}
		if err == nil {
			if s.degraded {
				s.tracer.Emit(telemetry.Event{Kind: telemetry.EvStoreDegraded, Stage: "healed"})
			}
			s.degraded = false
			s.degradedErr = nil
			return nil
		}
	}
	if !s.degraded {
		s.tracer.Emit(telemetry.Event{Kind: telemetry.EvStoreDegraded, Stage: "degraded"})
	}
	s.degraded = true
	s.degradedErr = err
	return err
}

// rewind truncates the WAL back to off after a failed partial record
// write, so a retry never leaves interleaved garbage for replay.
func (s *Store) rewind(off int64) {
	_ = s.wal.Truncate(off)
	_, _ = s.wal.Seek(off, io.SeekStart)
}

// Append assigns the record an LSN and writes it to the WAL. Transient
// write errors are retried with capped backoff; exhaustion puts the store
// into durability-degraded mode. Errors are sticky and also returned;
// callers on the hot path may ignore them.
func (s *Store) Append(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	s.lsn++
	rec.LSN = s.lsn
	payload, err := json.Marshal(rec)
	if err != nil {
		s.stickyErr = err
		return err
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	off, err := s.wal.Seek(0, io.SeekCurrent)
	if err != nil {
		s.stickyErr = err
		return err
	}
	// The record write retries as a unit: a partially written attempt is
	// rewound to the pre-record offset first.
	err = s.retryWrite(func() error {
		if _, err := s.wal.Write(hdr[:]); err != nil {
			s.rewind(off)
			return err
		}
		if _, err := s.wal.Write(payload); err != nil {
			s.rewind(off)
			return err
		}
		return nil
	})
	if err != nil {
		if s.stickyErr == nil {
			s.stickyErr = err
		}
		return err
	}
	s.walRecords++
	if m := s.metrics; m != nil {
		m.StoreWALRecords.Inc()
		if !s.lastSnap.IsZero() {
			m.StoreSnapshotAge.Set(time.Since(s.lastSnap).Seconds())
		}
	}
	return nil
}

// WriteSnapshot persists the state atomically and rotates the WAL. The
// state's Generation and WALSeq are stamped from the store, so a replay of
// any WAL records that survive a crash mid-rotation is a no-op.
func (s *Store) WriteSnapshot(st *State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	if s.degraded {
		// Durability-degraded mode suspends snapshots: the RM keeps
		// allocating, and the next successful append heals the store and
		// re-enables them.
		return nil
	}
	st.Generation = s.generation
	st.WALSeq = s.lsn
	raw, err := EncodeSnapshot(st)
	if err != nil {
		s.stickyErr = err
		return err
	}

	snapPath := filepath.Join(s.dir, snapshotName)
	err = s.retryWrite(func() error {
		return writeSnapshotFile(s.dir, snapPath, raw)
	})
	if err != nil {
		if s.stickyErr == nil {
			s.stickyErr = err
		}
		return err
	}

	// Rotate the WAL: everything up to s.lsn is folded into the snapshot.
	// A crash before the rotation completes is safe — WALSeq skips the
	// stale records on replay.
	if err := s.rotateWALLocked(); err != nil {
		s.stickyErr = err
		return err
	}

	s.lastSnap = time.Now()
	if m := s.metrics; m != nil {
		m.StoreSnapshotBytes.Set(float64(len(raw)))
		m.StoreSnapshotAge.Set(0)
	}
	return nil
}

// writeSnapshotFile performs one atomic snapshot attempt: temp file,
// write, fsync, rename. Each retry starts from a fresh temp file.
func writeSnapshotFile(dir, snapPath string, raw []byte) error {
	tmp, err := os.CreateTemp(dir, snapshotName+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err = tmp.Write(raw); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmpName, snapPath)
	}
	if err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// rotateWALLocked truncates the WAL back to a bare header. s.mu held.
func (s *Store) rotateWALLocked() error {
	if err := s.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var hdr [12]byte
	copy(hdr[:8], walMagic)
	binary.BigEndian.PutUint32(hdr[8:], Version)
	if _, err := s.wal.Write(hdr[:]); err != nil {
		return err
	}
	return nil
}

// SnapshotAge returns the time since the last snapshot (0 if none yet) and
// refreshes the harp_store_snapshot_age_seconds gauge. Embedders call it
// from a periodic sweep.
func (s *Store) SnapshotAge() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lastSnap.IsZero() {
		return 0
	}
	age := time.Since(s.lastSnap)
	if m := s.metrics; m != nil {
		m.StoreSnapshotAge.Set(age.Seconds())
	}
	return age
}

// Close releases the WAL handle. It does NOT write a snapshot — graceful
// shutdown paths call WriteSnapshot first; crash simulations call Close
// alone.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.wal.Close()
}

// EncodeSnapshot renders the snapshot file bytes for the state.
func EncodeSnapshot(st *State) ([]byte, error) {
	payload, err := json.Marshal(st)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(snapshotMagic)+12+len(payload))
	out = append(out, snapshotMagic...)
	out = binary.BigEndian.AppendUint32(out, Version)
	out = binary.BigEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return out, nil
}

// DecodeSnapshot parses snapshot file bytes. Any structural defect —
// short file, wrong magic or version, length out of bounds, CRC mismatch,
// invalid JSON, trailing garbage — returns an error wrapping ErrCorrupt.
func DecodeSnapshot(raw []byte) (*State, error) {
	hdrLen := len(snapshotMagic) + 8
	if len(raw) < hdrLen+4 {
		return nil, fmt.Errorf("%w: snapshot too short (%d bytes)", ErrCorrupt, len(raw))
	}
	if string(raw[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	ver := binary.BigEndian.Uint32(raw[len(snapshotMagic):])
	if ver != Version {
		return nil, fmt.Errorf("%w: unsupported snapshot version %d", ErrCorrupt, ver)
	}
	n := binary.BigEndian.Uint32(raw[len(snapshotMagic)+4:])
	if n > MaxPayload || int64(n) != int64(len(raw)-hdrLen-4) {
		return nil, fmt.Errorf("%w: snapshot length %d does not match file", ErrCorrupt, n)
	}
	payload := raw[hdrLen : hdrLen+int(n)]
	want := binary.BigEndian.Uint32(raw[hdrLen+int(n):])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("%w: snapshot CRC mismatch", ErrCorrupt)
	}
	st := NewState()
	if err := json.Unmarshal(payload, st); err != nil {
		return nil, fmt.Errorf("%w: snapshot payload: %v", ErrCorrupt, err)
	}
	if st.Tables == nil {
		st.Tables = make(map[string]*opoint.Table)
	}
	return st, nil
}

// ReplayWAL streams records out of a WAL reader, calling apply for each
// CRC-valid record. It returns the record count, the byte offset of the end
// of the last valid record (the truncation point for a torn tail), and the
// error that stopped replay (nil at a clean EOF). A torn or bit-flipped
// tail is an expected crash artefact, not a failure: everything before it
// has been applied. The function never panics on arbitrary input.
func ReplayWAL(r io.Reader, apply func(Record)) (records int, valid int64, err error) {
	hdr := make([]byte, len(walMagic)+4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, 0, fmt.Errorf("%w: WAL header: %v", ErrCorrupt, err)
	}
	if string(hdr[:len(walMagic)]) != walMagic {
		return 0, 0, fmt.Errorf("%w: bad WAL magic", ErrCorrupt)
	}
	if ver := binary.BigEndian.Uint32(hdr[len(walMagic):]); ver != Version {
		return 0, 0, fmt.Errorf("%w: unsupported WAL version %d", ErrCorrupt, ver)
	}
	valid = int64(len(hdr))

	var rechdr [8]byte
	var buf []byte
	for {
		if _, err := io.ReadFull(r, rechdr[:]); err != nil {
			if err == io.EOF {
				return records, valid, nil
			}
			return records, valid, fmt.Errorf("%w: record header: %v", ErrCorrupt, err)
		}
		n := binary.BigEndian.Uint32(rechdr[:4])
		want := binary.BigEndian.Uint32(rechdr[4:])
		if n > MaxPayload {
			return records, valid, fmt.Errorf("%w: record length %d exceeds limit", ErrCorrupt, n)
		}
		if uint32(cap(buf)) < n {
			buf = make([]byte, n)
		}
		payload := buf[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return records, valid, fmt.Errorf("%w: record payload: %v", ErrCorrupt, err)
		}
		if crc32.ChecksumIEEE(payload) != want {
			return records, valid, fmt.Errorf("%w: record CRC mismatch", ErrCorrupt)
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return records, valid, fmt.Errorf("%w: record payload: %v", ErrCorrupt, err)
		}
		if apply != nil {
			apply(rec)
		}
		records++
		valid += int64(len(rechdr)) + int64(n)
	}
}
