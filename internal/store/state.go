// Package store is harpd's durable-state layer: an atomic, checksummed
// snapshot of the resource manager's learned state plus a CRC-per-record
// append-only write-ahead log of the mutations since. Together they let the
// RM restart warm — reconnecting applications resume with their replayed
// operating-point tables at their prior exploration stage instead of
// re-learning (see RESILIENCE.md, "Warm restart").
//
// The layer is deliberately small: the only state worth money is what §4.2
// exploration spends dozens of epochs acquiring (measured operating-point
// tables) plus enough session context to greet reconnecting applications
// (instance, adaptivity, phase) and the decision-sequence high-water mark.
// Exploration *stage* is never stored — it is derived from a table's
// measured-point count, so replaying tables restores it for free.
package store

import (
	"github.com/harp-rm/harp/internal/alloc"
	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/telemetry"
)

// Record kinds logged to the WAL, one per mutating journal trigger.
const (
	// RecRegister logs a session registration (or resumption).
	RecRegister = "register"
	// RecDeregister logs a session exit or liveness reap.
	RecDeregister = "deregister"
	// RecTable logs an uploaded operating-point table.
	RecTable = "table"
	// RecPoint logs one measured operating point committed by exploration
	// (graduations are implied: stage is derived from the measured count).
	RecPoint = "point"
	// RecPhase logs an application phase change.
	RecPhase = "phase"
	// RecEnergy logs a full energy-ledger snapshot (appended once per epoch;
	// each record supersedes the previous, so replay keeps only the last).
	RecEnergy = "energy"
)

// Record is one WAL entry. LSN is assigned by Store.Append; Seq carries the
// manager's decision-sequence high-water so replay recovers it exactly.
type Record struct {
	LSN        uint64                 `json:"lsn"`
	Kind       string                 `json:"kind"`
	Seq        int                    `json:"seq,omitempty"`
	Instance   string                 `json:"instance,omitempty"`
	App        string                 `json:"app,omitempty"`
	Adaptivity string                 `json:"adaptivity,omitempty"`
	OwnUtility bool                   `json:"ownUtility,omitempty"`
	Phase      string                 `json:"phase,omitempty"`
	Stage      string                 `json:"stage,omitempty"`
	Table      *opoint.Table          `json:"table,omitempty"`
	Point      *opoint.OperatingPoint `json:"point,omitempty"`
	Energy     *telemetry.EnergyState `json:"energy,omitempty"`
}

// SessionState is the durable view of one registered session.
type SessionState struct {
	Instance   string `json:"instance"`
	App        string `json:"app"`
	Adaptivity string `json:"adaptivity"`
	OwnUtility bool   `json:"ownUtility,omitempty"`
	Phase      string `json:"phase,omitempty"`
}

// State is the full durable state: what a snapshot holds and what WAL replay
// reconstructs. WALSeq is the LSN high-water folded into the state — replay
// skips records at or below it, which makes the snapshot-then-rotate crash
// window idempotent (a crash between snapshot rename and WAL truncation
// leaves stale records behind; they are skipped on the next boot).
type State struct {
	Generation uint64                   `json:"generation"`
	WALSeq     uint64                   `json:"walSeq"`
	Seq        int                      `json:"seq"`
	Tables     map[string]*opoint.Table `json:"tables,omitempty"`
	Sessions   []SessionState           `json:"sessions,omitempty"`
	// AllocCache holds the allocator's fingerprinted solution cache in
	// most-recently-used order, snapshot-only (no WAL records: losing cache
	// entries in a crash costs one cold solve, not learned state). Entries
	// are content-addressed — the fingerprint covers platform, solver
	// configuration and full table contents — so a stale entry after a
	// config change is unreachable rather than wrong.
	AllocCache []alloc.CachedSolution `json:"allocCache,omitempty"`
	// Energy is the cumulative energy ledger at the last epoch — per-session
	// and fleet joules survive a warm restart, so "joules since deployment"
	// stays meaningful across kill -9 (at most the accrual since the last
	// epoch's WAL record is lost).
	Energy *telemetry.EnergyState `json:"energy,omitempty"`
}

// NewState returns an empty cold-start state.
func NewState() *State {
	return &State{Tables: make(map[string]*opoint.Table)}
}

// Apply folds one WAL record into the state. Records at or below the
// state's WALSeq are duplicates from a pre-rotation WAL and are skipped.
// Unknown kinds are ignored (forward compatibility): the record was CRC-valid,
// so dropping it beats aborting the whole recovery.
func (s *State) Apply(r Record) {
	if r.LSN != 0 && r.LSN <= s.WALSeq {
		return
	}
	if r.LSN > s.WALSeq {
		s.WALSeq = r.LSN
	}
	if r.Seq > s.Seq {
		s.Seq = r.Seq
	}
	switch r.Kind {
	case RecRegister:
		if r.Instance == "" {
			return
		}
		s.removeSession(r.Instance)
		s.Sessions = append(s.Sessions, SessionState{
			Instance:   r.Instance,
			App:        r.App,
			Adaptivity: r.Adaptivity,
			OwnUtility: r.OwnUtility,
			Phase:      r.Phase,
		})
	case RecDeregister:
		s.removeSession(r.Instance)
	case RecTable:
		if r.Table == nil || r.App == "" {
			return
		}
		s.mergeTable(r.App, r.Table)
	case RecPoint:
		if r.Point == nil || r.App == "" {
			return
		}
		s.table(r.App, "").Upsert(*r.Point)
	case RecPhase:
		for i := range s.Sessions {
			if s.Sessions[i].Instance == r.Instance {
				s.Sessions[i].Phase = r.Phase
			}
		}
	case RecEnergy:
		if r.Energy != nil {
			s.Energy = r.Energy.Clone()
		}
	}
}

// removeSession drops the session with the given instance, if present.
func (s *State) removeSession(instance string) {
	for i := range s.Sessions {
		if s.Sessions[i].Instance == instance {
			s.Sessions = append(s.Sessions[:i], s.Sessions[i+1:]...)
			return
		}
	}
}

// table returns the app's stored table, creating it on first use.
func (s *State) table(app, platformName string) *opoint.Table {
	if s.Tables == nil {
		s.Tables = make(map[string]*opoint.Table)
	}
	t, ok := s.Tables[app]
	if !ok {
		t = &opoint.Table{App: app, Platform: platformName}
		s.Tables[app] = t
	}
	return t
}

// mergeTable upserts every point of an uploaded table into the app's stored
// table, so a later upload refines rather than forgets earlier learning.
func (s *State) mergeTable(app string, up *opoint.Table) {
	t := s.table(app, up.Platform)
	if t.Platform == "" {
		t.Platform = up.Platform
	}
	for _, p := range up.Points {
		t.Upsert(p)
	}
}

// Clone returns a deep copy (tables included), safe to hand to a Manager.
// Cached solutions are copied at the slice level only: entries are immutable
// by contract (the allocator returns them read-only).
func (s *State) Clone() *State {
	out := &State{
		Generation: s.Generation,
		WALSeq:     s.WALSeq,
		Seq:        s.Seq,
		Sessions:   append([]SessionState(nil), s.Sessions...),
		AllocCache: append([]alloc.CachedSolution(nil), s.AllocCache...),
		Energy:     s.Energy.Clone(),
		Tables:     make(map[string]*opoint.Table, len(s.Tables)),
	}
	for app, t := range s.Tables {
		out.Tables[app] = t.Clone()
	}
	return out
}

// MeasuredPoints returns the total measured points across all tables — the
// quantity warm restart exists to preserve.
func (s *State) MeasuredPoints() int {
	var n int
	for _, t := range s.Tables {
		n += t.MeasuredCount()
	}
	return n
}
