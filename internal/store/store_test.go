package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
)

// pt builds a measured operating point on the Raptor Lake vector shape.
func pt(t *testing.T, util, power float64, cores int) opoint.OperatingPoint {
	t.Helper()
	rv := platform.NewResourceVector(platform.RaptorLake())
	rv.Counts[0][0] = cores
	return opoint.OperatingPoint{Vector: rv, Utility: util, Power: power, Measured: true}
}

func appendAll(t *testing.T, s *Store, recs ...Record) {
	t.Helper()
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

func TestColdStartThenWarmRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got := s.Generation(); got != 1 {
		t.Fatalf("fresh generation = %d, want 1", got)
	}
	if !s.Recovery().ColdStart {
		t.Fatalf("fresh dir should be a cold start")
	}
	p1, p2 := pt(t, 100, 10, 1), pt(t, 200, 20, 2)
	appendAll(t, s,
		Record{Kind: RecRegister, Instance: "ep/1", App: "ep", Adaptivity: "scalable", Seq: 1},
		Record{Kind: RecPoint, App: "ep", Point: &p1, Seq: 2},
		Record{Kind: RecPoint, App: "ep", Point: &p2, Seq: 3},
		Record{Kind: RecPhase, Instance: "ep/1", Phase: "solve", Seq: 4},
	)
	s.Close() // crash: no snapshot

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if got := s2.Generation(); got != 2 {
		t.Fatalf("generation after restart = %d, want 2", got)
	}
	rec := s2.Recovery()
	if rec.ColdStart || rec.WALRecords != 4 || rec.Corruptions != 0 {
		t.Fatalf("recovery = %+v, want warm with 4 records", rec)
	}
	st := s2.RecoveredState()
	if st.Seq != 4 {
		t.Fatalf("recovered Seq = %d, want 4", st.Seq)
	}
	if n := st.Tables["ep"].MeasuredCount(); n != 2 {
		t.Fatalf("recovered measured points = %d, want 2", n)
	}
	if len(st.Sessions) != 1 || st.Sessions[0].Phase != "solve" {
		t.Fatalf("recovered sessions = %+v", st.Sessions)
	}
}

func TestSnapshotRotatesWALAndReplays(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	p1, p2 := pt(t, 100, 10, 1), pt(t, 150, 12, 2)
	appendAll(t, s,
		Record{Kind: RecRegister, Instance: "mg/7", App: "mg", Adaptivity: "scalable", Seq: 1},
		Record{Kind: RecPoint, App: "mg", Point: &p1, Seq: 2},
	)
	st := s.RecoveredState().Clone()
	st.Seq = 2
	st.Sessions = []SessionState{{Instance: "mg/7", App: "mg", Adaptivity: "scalable"}}
	st.Tables["mg"] = &opoint.Table{App: "mg", Points: []opoint.OperatingPoint{p1}}
	if err := s.WriteSnapshot(st); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	// The WAL must be back to a bare header.
	if fi, err := os.Stat(filepath.Join(dir, walName)); err != nil || fi.Size() != 12 {
		t.Fatalf("WAL after rotation: %v size=%d, want 12", err, fi.Size())
	}
	appendAll(t, s, Record{Kind: RecPoint, App: "mg", Point: &p2, Seq: 3})
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if !rec.SnapshotLoaded || rec.WALRecords != 1 || rec.Corruptions != 0 {
		t.Fatalf("recovery = %+v, want snapshot + 1 WAL record", rec)
	}
	got := s2.RecoveredState()
	if n := got.Tables["mg"].MeasuredCount(); n != 2 {
		t.Fatalf("measured points = %d, want 2 (snapshot + WAL)", n)
	}
	if got.Seq != 3 || got.Generation != 2 {
		t.Fatalf("Seq=%d Generation=%d, want 3 and 2", got.Seq, got.Generation)
	}
}

func TestTornWALTailTruncatesToLastValidRecord(t *testing.T) {
	for name, mangle := range map[string]func([]byte) []byte{
		"truncated-mid-record": func(raw []byte) []byte { return raw[:len(raw)-3] },
		"bit-flip-in-tail": func(raw []byte) []byte {
			raw[len(raw)-2] ^= 0x40
			return raw
		},
		"garbage-appended": func(raw []byte) []byte { return append(raw, 0xde, 0xad, 0xbe, 0xef) },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			p1, p2 := pt(t, 100, 10, 1), pt(t, 150, 12, 2)
			appendAll(t, s,
				Record{Kind: RecPoint, App: "ep", Point: &p1, Seq: 1},
				Record{Kind: RecPoint, App: "ep", Point: &p2, Seq: 2},
			)
			s.Close()

			walPath := filepath.Join(dir, walName)
			raw, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(walPath, mangle(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			s2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			rec := s2.Recovery()
			if rec.ColdStart {
				t.Fatalf("torn tail must not force a cold start: %+v", rec)
			}
			if rec.Corruptions != 1 || rec.Err == nil {
				t.Fatalf("recovery = %+v, want 1 corruption with Err", rec)
			}
			if rec.WALRecords < 1 {
				t.Fatalf("recovered %d records, want >= 1", rec.WALRecords)
			}
			// The store stays usable: append and re-recover cleanly. The
			// boot checkpoint folded the healed replay into a snapshot, so
			// the third open sees only the new append in the WAL.
			p3 := pt(t, 50, 5, 3)
			appendAll(t, s2, Record{Kind: RecPoint, App: "ep", Point: &p3, Seq: 3})
			s2.Close()
			s3, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("third open: %v", err)
			}
			defer s3.Close()
			if s3.Recovery().Corruptions != 0 {
				t.Fatalf("truncation did not heal the WAL: %+v", s3.Recovery())
			}
			if got := s3.Recovery().WALRecords; got != 1 {
				t.Fatalf("records after heal = %d, want 1 (rest checkpointed)", got)
			}
			want := rec.WALRecords + 1
			if got := s3.RecoveredState().MeasuredPoints(); got != want {
				t.Fatalf("measured points after heal = %d, want %d", got, want)
			}
		})
	}
}

func TestCorruptSnapshotQuarantinesAndColdStarts(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	p1 := pt(t, 100, 10, 1)
	appendAll(t, s, Record{Kind: RecPoint, App: "ep", Point: &p1, Seq: 1})
	st := NewState()
	if err := s.WriteSnapshot(st); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	s.Close()

	snapPath := filepath.Join(dir, snapshotName)
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if !rec.ColdStart || rec.Err == nil || !errors.Is(rec.Err, ErrCorrupt) {
		t.Fatalf("recovery = %+v, want cold start with ErrCorrupt", rec)
	}
	if rec.Quarantined == "" {
		t.Fatalf("corrupt snapshot was not quarantined")
	}
	if _, err := os.Stat(filepath.Join(rec.Quarantined, snapshotName)); err != nil {
		t.Fatalf("quarantined snapshot missing: %v", err)
	}
	if got := s2.Generation(); got != 1 {
		t.Fatalf("cold-start generation = %d, want 1", got)
	}
	if len(s2.RecoveredState().Tables) != 0 {
		t.Fatalf("cold start should have no tables")
	}
}

func TestCorruptWALHeaderQuarantinesWALKeepsSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	st := NewState()
	p1 := pt(t, 100, 10, 1)
	st.Tables["ep"] = &opoint.Table{App: "ep", Points: []opoint.OperatingPoint{p1}}
	if err := s.WriteSnapshot(st); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	s.Close()

	if err := os.WriteFile(filepath.Join(dir, walName), []byte("not a wal"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if rec.ColdStart {
		t.Fatalf("healthy snapshot must survive a corrupt WAL: %+v", rec)
	}
	if rec.Quarantined == "" || rec.Corruptions != 1 {
		t.Fatalf("recovery = %+v, want quarantined WAL", rec)
	}
	if n := s2.RecoveredState().Tables["ep"].MeasuredCount(); n != 1 {
		t.Fatalf("snapshot state lost: measured = %d, want 1", n)
	}
}

// TestStaleWALRecordsSkippedAfterRotationCrash covers the crash window
// between the snapshot rename and the WAL truncation: stale records with
// LSN <= the snapshot's WALSeq must not be applied twice.
func TestStaleWALRecordsSkippedAfterRotationCrash(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	p1 := pt(t, 100, 10, 1)
	appendAll(t, s, Record{Kind: RecRegister, Instance: "ep/1", App: "ep", Seq: 1},
		Record{Kind: RecPoint, App: "ep", Point: &p1, Seq: 2})
	walRaw, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	st := NewState()
	st.Seq = 2
	st.Sessions = []SessionState{{Instance: "ep/1", App: "ep"}}
	st.Tables["ep"] = &opoint.Table{App: "ep", Points: []opoint.OperatingPoint{p1}}
	if err := s.WriteSnapshot(st); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	s.Close()
	// Simulate the crash: restore the pre-rotation WAL next to the new
	// snapshot.
	if err := os.WriteFile(filepath.Join(dir, walName), walRaw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	got := s2.RecoveredState()
	if n := len(got.Tables["ep"].Points); n != 1 {
		t.Fatalf("stale WAL records were re-applied: %d points, want 1", n)
	}
	if len(got.Sessions) != 1 {
		t.Fatalf("sessions = %+v, want exactly the snapshot session", got.Sessions)
	}
	// New appends after the recovered LSN still apply.
	p2 := pt(t, 150, 12, 2)
	appendAll(t, s2, Record{Kind: RecPoint, App: "ep", Point: &p2, Seq: 3})
}

func TestSnapshotRoundTripAndCorruptionVariants(t *testing.T) {
	st := NewState()
	st.Generation = 7
	st.Seq = 42
	p1 := pt(t, 100, 10, 1)
	st.Tables["ep"] = &opoint.Table{App: "ep", Platform: "intel", Points: []opoint.OperatingPoint{p1}}
	st.Sessions = []SessionState{{Instance: "ep/1", App: "ep", Adaptivity: "scalable", Phase: "x"}}
	raw, err := EncodeSnapshot(st)
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	got, err := DecodeSnapshot(raw)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if got.Generation != 7 || got.Seq != 42 || len(got.Sessions) != 1 || got.Tables["ep"].MeasuredCount() != 1 {
		t.Fatalf("round trip lost state: %+v", got)
	}

	for name, mangle := range map[string]func([]byte) []byte{
		"empty":        func(b []byte) []byte { return nil },
		"short":        func(b []byte) []byte { return b[:8] },
		"bad-magic":    func(b []byte) []byte { b[0] ^= 0xff; return b },
		"bad-version":  func(b []byte) []byte { b[9] ^= 0xff; return b },
		"bad-length":   func(b []byte) []byte { b[14] ^= 0xff; return b },
		"payload-flip": func(b []byte) []byte { b[len(b)/2] ^= 1; return b },
		"crc-flip":     func(b []byte) []byte { b[len(b)-1] ^= 1; return b },
		"truncated":    func(b []byte) []byte { return b[:len(b)-5] },
		"trailing":     func(b []byte) []byte { return append(b, 0) },
	} {
		t.Run(name, func(t *testing.T) {
			b := append([]byte(nil), raw...)
			if _, err := DecodeSnapshot(mangle(b)); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("mangled snapshot decoded: err=%v", err)
			}
		})
	}
}

func TestReplayWALStopsAtFirstBadRecord(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(walMagic)
	var v [4]byte
	binary.BigEndian.PutUint32(v[:], Version)
	buf.Write(v[:])
	write := func(payload []byte, crc uint32) {
		var hdr [8]byte
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[4:], crc)
		buf.Write(hdr[:])
		buf.Write(payload)
	}
	good := []byte(`{"lsn":1,"kind":"phase","instance":"a","phase":"p"}`)
	write(good, crc32.ChecksumIEEE(good))
	bad := []byte(`{"lsn":2,"kind":"phase"}`)
	write(bad, crc32.ChecksumIEEE(bad)+1)
	trailingGood := []byte(`{"lsn":3,"kind":"phase"}`)
	write(trailingGood, crc32.ChecksumIEEE(trailingGood))

	var applied []Record
	n, valid, err := ReplayWAL(bytes.NewReader(buf.Bytes()), func(r Record) { applied = append(applied, r) })
	if n != 1 || len(applied) != 1 || applied[0].LSN != 1 {
		t.Fatalf("replayed %d records (%+v), want exactly the first", n, applied)
	}
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	wantValid := int64(12 + 8 + len(good))
	if valid != wantValid {
		t.Fatalf("valid = %d, want %d", valid, wantValid)
	}
}

func TestStateApplySkipsDuplicateLSNs(t *testing.T) {
	st := NewState()
	p1 := pt(t, 100, 10, 1)
	st.Apply(Record{LSN: 5, Kind: RecPoint, App: "ep", Point: &p1, Seq: 9})
	before := len(st.Tables["ep"].Points)
	st.Apply(Record{LSN: 5, Kind: RecPoint, App: "ep", Point: &p1})
	st.Apply(Record{LSN: 3, Kind: RecRegister, Instance: "ghost/1", App: "ghost"})
	if len(st.Tables["ep"].Points) != before || len(st.Sessions) != 0 {
		t.Fatalf("duplicate/stale LSNs were applied: %+v", st)
	}
	if st.WALSeq != 5 || st.Seq != 9 {
		t.Fatalf("high-waters: WALSeq=%d Seq=%d, want 5 and 9", st.WALSeq, st.Seq)
	}
	// Unknown kinds are skipped without error.
	st.Apply(Record{LSN: 6, Kind: "future-kind"})
	if st.WALSeq != 6 {
		t.Fatalf("unknown kind must still advance WALSeq")
	}
}

func TestStoreErrIsStickyButNonFatal(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s.Close()
	if err := s.Append(Record{Kind: RecPhase, Instance: "x"}); err == nil {
		t.Fatalf("Append after Close must error")
	}
}
