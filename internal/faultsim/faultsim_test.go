package faultsim

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"time"
)

func TestGenerateDeterministic(t *testing.T) {
	targets := []string{"ep.C", "mg.C", "lu.A"}
	a := Generate(42, targets, time.Minute, 16)
	b := Generate(42, targets, time.Minute, 16)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	var ab, bb bytes.Buffer
	if err := a.Encode(&ab); err != nil {
		t.Fatal(err)
	}
	if err := b.Encode(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Fatal("same seed produced different encodings")
	}
	c := Generate(43, targets, time.Minute, 16)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	for _, f := range a.Faults {
		if f.At < time.Minute/10 || f.At > time.Minute*9/10 {
			t.Errorf("fault at %v outside the [10%%, 90%%] window", f.At)
		}
	}
}

func TestGenerateKindSubset(t *testing.T) {
	p := Generate(7, []string{"x"}, time.Minute, 32, KindCrash)
	for _, f := range p.Faults {
		if f.Kind != KindCrash {
			t.Fatalf("kind %q generated outside the requested subset", f.Kind)
		}
	}
}

func TestPlanRoundTrip(t *testing.T) {
	p := Generate(3, []string{"a", "b"}, 10*time.Second, 8, AllKinds()...)
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip changed the plan:\n%+v\n%+v", p, got)
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	cases := []Plan{
		{Faults: []Fault{{At: time.Second, Target: "x", Kind: "melt"}}},
		{Faults: []Fault{{At: time.Second, Kind: KindCrash}}},
		{Faults: []Fault{{At: -time.Second, Target: "x", Kind: KindCrash}}},
		{Faults: []Fault{{At: time.Second, Target: "x", Kind: KindHang}}}, // timed, no duration
		{Faults: []Fault{
			{At: 2 * time.Second, Target: "x", Kind: KindCrash},
			{At: time.Second, Target: "x", Kind: KindCrash},
		}},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan rejected: %v", err)
	}
}

func TestClusterKinds(t *testing.T) {
	for _, k := range []Kind{KindMachineKill, KindCoordKill} {
		if !k.Valid() || !k.ClusterKind() {
			t.Errorf("%s: Valid/ClusterKind should both hold", k)
		}
		if k.Timed() || k.RMKind() {
			t.Errorf("%s: cluster kinds are permanent and not RM-targeted", k)
		}
	}
	if KindCrash.ClusterKind() || KindRMCrash.ClusterKind() {
		t.Error("non-cluster kinds reported as cluster kinds")
	}
	good := Plan{Faults: []Fault{
		{At: time.Second, Target: "m1", Kind: KindMachineKill},
		{At: 2 * time.Second, Target: CoordinatorTarget, Kind: KindCoordKill},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("cluster plan rejected: %v", err)
	}
	bad := Plan{Faults: []Fault{{At: time.Second, Target: "m1", Kind: KindCoordKill}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("coordinator-kill with a machine target accepted")
	}
}

func TestCursorDelivery(t *testing.T) {
	p := &Plan{Faults: []Fault{
		{At: time.Second, Target: "a", Kind: KindCrash},
		{At: 2 * time.Second, Target: "b", Kind: KindCrash},
		{At: 2 * time.Second, Target: "c", Kind: KindCrash},
		{At: 5 * time.Second, Target: "d", Kind: KindCrash},
	}}
	cur := p.Cursor()
	if got := cur.Due(500 * time.Millisecond); got != nil {
		t.Fatalf("early faults delivered: %+v", got)
	}
	if got := cur.Due(2 * time.Second); len(got) != 3 {
		t.Fatalf("due at 2s = %d faults, want 3", len(got))
	}
	if got := cur.Due(2 * time.Second); got != nil {
		t.Fatalf("faults delivered twice: %+v", got)
	}
	if cur.Remaining() != 1 {
		t.Fatalf("remaining = %d, want 1", cur.Remaining())
	}
	if got := cur.Due(time.Minute); len(got) != 1 || got[0].Target != "d" {
		t.Fatalf("final delivery wrong: %+v", got)
	}
	var nilPlan *Plan
	if nilPlan.Cursor().Due(time.Hour) != nil {
		t.Error("nil plan delivered faults")
	}
}

func TestConnWriteFaults(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fc := WrapConn(a)

	// Dropped writes report success without delivering anything.
	fc.DropWrites(true)
	if n, err := fc.Write([]byte("lost")); n != 4 || err != nil {
		t.Fatalf("dropped write = (%d, %v)", n, err)
	}
	_ = b.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 8)
	if _, err := b.Read(buf); err == nil {
		t.Fatal("dropped write reached the peer")
	}

	// Restored transparency delivers again.
	fc.DropWrites(false)
	go func() { _, _ = fc.Write([]byte("ok")) }()
	_ = b.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := b.Read(buf)
	if err != nil || string(buf[:n]) != "ok" {
		t.Fatalf("post-drop write = (%q, %v)", buf[:n], err)
	}
}

func TestConnDelaysAndStalls(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fc := WrapConn(a)

	fc.DelayWrites(60 * time.Millisecond)
	start := time.Now()
	go func() {
		buf := make([]byte, 8)
		_, _ = b.Read(buf)
	}()
	if _, err := fc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Errorf("delayed write completed in %v", d)
	}

	fc.DelayWrites(0)
	fc.StallReads(60 * time.Millisecond)
	go func() { _, _ = b.Write([]byte("y")) }()
	start = time.Now()
	buf := make([]byte, 8)
	if _, err := fc.Read(buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Errorf("stalled read completed in %v", d)
	}
}

func TestListenerRegistry(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := WrapListener(ln)
	defer fl.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2; i++ {
			c, err := fl.Accept()
			if err != nil {
				return
			}
			if _, ok := c.(*Conn); !ok {
				t.Errorf("accepted conn not wrapped: %T", c)
			}
		}
	}()
	for i := 0; i < 2; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
	}
	<-done
	if got := len(fl.Conns()); got != 2 {
		t.Fatalf("registry holds %d conns, want 2", got)
	}
}
