package faultsim

import (
	"net"
	"sync"
	"time"
)

// Conn wraps a net.Conn with injectable connection-level faults: read
// stalls (slow reader), per-write latency (delayed writes) and silent write
// drops. The zero state is transparent; faults are armed at runtime by the
// chaos driver. Safe for concurrent use alongside the usual one-reader /
// serialized-writers discipline of a protocol connection.
type Conn struct {
	net.Conn

	mu         sync.Mutex
	stallUntil time.Time
	writeDelay time.Duration
	dropWrites bool
}

// WrapConn wraps an established connection.
func WrapConn(c net.Conn) *Conn { return &Conn{Conn: c} }

// StallReads makes Read block for d before touching the underlying
// connection — a slow reader whose socket buffer backs up.
func (c *Conn) StallReads(d time.Duration) {
	c.mu.Lock()
	c.stallUntil = time.Now().Add(d)
	c.mu.Unlock()
}

// DelayWrites adds d of latency in front of every subsequent Write
// (0 restores transparency).
func (c *Conn) DelayWrites(d time.Duration) {
	c.mu.Lock()
	c.writeDelay = d
	c.mu.Unlock()
}

// DropWrites makes Write swallow data while reporting success — the
// connection looks healthy to the writer while the peer hears nothing.
func (c *Conn) DropWrites(drop bool) {
	c.mu.Lock()
	c.dropWrites = drop
	c.mu.Unlock()
}

// Read applies any pending stall, then reads.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	until := c.stallUntil
	c.mu.Unlock()
	if d := time.Until(until); d > 0 {
		time.Sleep(d)
	}
	return c.Conn.Read(p)
}

// Write applies the configured delay and drop before writing.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	delay := c.writeDelay
	drop := c.dropWrites
	c.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if drop {
		return len(p), nil
	}
	return c.Conn.Write(p)
}

// Listener wraps a net.Listener so every accepted connection is a *Conn,
// kept in an accept-order registry the chaos driver can reach into.
type Listener struct {
	net.Listener

	mu    sync.Mutex
	conns []*Conn
}

// WrapListener wraps ln.
func WrapListener(ln net.Listener) *Listener { return &Listener{Listener: ln} }

// Accept wraps the next connection and records it.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	fc := WrapConn(c)
	l.mu.Lock()
	l.conns = append(l.conns, fc)
	l.mu.Unlock()
	return fc, nil
}

// Conns returns the accepted connections in accept order (including closed
// ones).
func (l *Listener) Conns() []*Conn {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Conn, len(l.conns))
	copy(out, l.conns)
	return out
}
