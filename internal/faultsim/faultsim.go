// Package faultsim provides deterministic fault injection for resilience
// testing. A Plan is a seeded, serialisable schedule of client failures
// (crashes, hangs, dropouts, slow readers, delayed writes); a Cursor replays
// it against any clock — harpsim's virtual time or a live server's wall
// time — so the same seed produces the same failure sequence and, in the
// simulator, byte-identical decision journals.
package faultsim

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// Kind enumerates injectable failure modes.
type Kind string

// Failure modes. Crash, Hang and Dropout act at the session level and apply
// to both the live socket path and the simulator; SlowReader, Disconnect and
// DelayWrites are connection-level and only meaningful on real sockets.
const (
	// KindCrash kills the client silently: no exit message, no further
	// traffic, ever. The RM must reap the session via its liveness policy.
	KindCrash Kind = "crash"
	// KindHang freezes the client for Duration: it stops reading and
	// writing, then resumes as if nothing happened.
	KindHang Kind = "hang"
	// KindDropout crashes the client for Duration, after which it
	// reconnects and re-registers (the auto-reconnect path).
	KindDropout Kind = "dropout"
	// KindSlowReader stalls the client's reads for Duration, backing up the
	// RM's writes until the socket buffer fills.
	KindSlowReader Kind = "slow-reader"
	// KindDisconnect drops the connection abruptly; an auto-reconnect
	// client re-dials immediately.
	KindDisconnect Kind = "disconnect"
	// KindDelayWrites adds Duration of latency to every client write.
	KindDelayWrites Kind = "delay-writes"
	// KindRMCrash kills and restarts the resource manager itself (target
	// must be RMTarget): every session dies with it, and the RM comes back
	// warm from its state directory — or cold without one. Clients behave
	// like libharp's auto-reconnect: live ones re-register immediately,
	// muted ones when their own fault lifts.
	KindRMCrash Kind = "rm-crash"
	// KindSolverStall stalls the RM's primary MMKP solver for Duration
	// (target must be RMTarget): every epoch in the window exceeds its
	// deadline budget and must recover through the degradation ladder.
	KindSolverStall Kind = "solver-stall"
	// KindStoreIO makes the RM's durable-state writes fail transiently for
	// Duration (target must be RMTarget), exercising the store's
	// retry/backoff path and, when retries exhaust, durability-degraded
	// mode.
	KindStoreIO Kind = "store-io"
	// KindMachineKill permanently kills one fleet machine (target is the
	// machine ID, e.g. "m2"): its local manager stops, its heartbeats
	// cease, and the cluster coordinator must re-home every session it
	// owned. Cluster harnesses only.
	KindMachineKill Kind = "machine-kill"
	// KindCoordKill permanently kills the active fleet coordinator (target
	// must be CoordinatorTarget): the standby promotes itself from the
	// last shipped cluster snapshot and reconciles against the surviving
	// machines. Cluster harnesses only.
	KindCoordKill Kind = "coordinator-kill"
)

// RMTarget is the Fault.Target naming the resource manager itself, the
// victim of KindRMCrash.
const RMTarget = "rm"

// CoordinatorTarget is the Fault.Target naming the fleet coordinator, the
// victim of KindCoordKill.
const CoordinatorTarget = "coordinator"

// Valid reports whether k is a known failure mode.
func (k Kind) Valid() bool {
	switch k {
	case KindCrash, KindHang, KindDropout, KindSlowReader, KindDisconnect, KindDelayWrites,
		KindRMCrash, KindSolverStall, KindStoreIO, KindMachineKill, KindCoordKill:
		return true
	}
	return false
}

// ClusterKind reports whether the kind targets fleet infrastructure — a
// whole machine or the coordinator — rather than an application instance
// or the single-node RM. Cluster kinds are permanent (not Timed).
func (k Kind) ClusterKind() bool {
	switch k {
	case KindMachineKill, KindCoordKill:
		return true
	}
	return false
}

// Timed reports whether the kind carries a meaningful Duration.
func (k Kind) Timed() bool {
	switch k {
	case KindHang, KindDropout, KindSlowReader, KindDelayWrites, KindSolverStall, KindStoreIO:
		return true
	}
	return false
}

// RMKind reports whether the kind targets the resource manager itself
// (Target must be RMTarget) rather than an application instance.
func (k Kind) RMKind() bool {
	switch k {
	case KindRMCrash, KindSolverStall, KindStoreIO:
		return true
	}
	return false
}

// SimKinds are the failure modes injectable into the simulator's session
// model (no real sockets there).
func SimKinds() []Kind { return []Kind{KindCrash, KindHang, KindDropout} }

// AllKinds lists every client-side failure mode. The RM-targeted kinds
// (rm-crash, solver-stall, store-io) are excluded: they hit the RM, not an
// application instance, so they are scheduled by hand (Generate assigns
// application targets).
func AllKinds() []Kind {
	return []Kind{KindCrash, KindHang, KindDropout, KindSlowReader, KindDisconnect, KindDelayWrites}
}

// Fault is one scheduled failure.
type Fault struct {
	// At is the injection time as an offset from the plan's start.
	At time.Duration `json:"at"`
	// Target is the victim instance (e.g. "ep.C" or "mg.C/21").
	Target string `json:"target"`
	// Kind is the failure mode.
	Kind Kind `json:"kind"`
	// Duration bounds timed faults (hang, dropout, slow-reader,
	// delay-writes); ignored for the others.
	Duration time.Duration `json:"duration,omitempty"`
}

// Plan is a deterministic fault schedule, sorted by injection time.
type Plan struct {
	// Seed records the generator seed (0 for hand-written plans).
	Seed int64 `json:"seed"`
	// Faults are the scheduled failures in injection order.
	Faults []Fault `json:"faults"`
}

// Generate builds a reproducible plan: the same seed, targets, horizon and
// kind set always yield the identical schedule. Injection times land in
// [horizon/10, horizon·9/10] so sessions exist before the first fault and
// the run can observe recovery after the last. An empty kinds list selects
// SimKinds — the session-level faults every harness understands.
func Generate(seed int64, targets []string, horizon time.Duration, n int, kinds ...Kind) *Plan {
	if len(kinds) == 0 {
		kinds = SimKinds()
	}
	rng := rand.New(rand.NewSource(seed))
	lo := horizon / 10
	span := horizon*9/10 - lo
	p := &Plan{Seed: seed, Faults: make([]Fault, 0, n)}
	for i := 0; i < n; i++ {
		f := Fault{
			At:     lo + time.Duration(rng.Int63n(int64(span)+1)),
			Target: targets[rng.Intn(len(targets))],
			Kind:   kinds[rng.Intn(len(kinds))],
		}
		if f.Kind.Timed() {
			// 100 ms .. 2 s, enough to straddle liveness deadlines.
			f.Duration = 100*time.Millisecond + time.Duration(rng.Int63n(int64(1900*time.Millisecond)))
		}
		p.Faults = append(p.Faults, f)
	}
	p.sort()
	return p
}

// sort orders faults by time with a deterministic tiebreak.
func (p *Plan) sort() {
	sort.SliceStable(p.Faults, func(i, j int) bool {
		a, b := p.Faults[i], p.Faults[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		return a.Kind < b.Kind
	})
}

// Validate checks the plan: known kinds, named targets, non-negative times,
// sorted schedule.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	var prev time.Duration
	for i, f := range p.Faults {
		if !f.Kind.Valid() {
			return fmt.Errorf("faultsim: fault %d: unknown kind %q", i, f.Kind)
		}
		if f.Target == "" {
			return fmt.Errorf("faultsim: fault %d: empty target", i)
		}
		if f.At < 0 || f.Duration < 0 {
			return fmt.Errorf("faultsim: fault %d: negative time", i)
		}
		if f.Kind.Timed() && f.Duration == 0 {
			return fmt.Errorf("faultsim: fault %d: %s without duration", i, f.Kind)
		}
		if f.Kind.RMKind() && f.Target != RMTarget {
			return fmt.Errorf("faultsim: fault %d: %s must target %q, got %q", i, f.Kind, RMTarget, f.Target)
		}
		if f.Kind == KindCoordKill && f.Target != CoordinatorTarget {
			return fmt.Errorf("faultsim: fault %d: %s must target %q, got %q", i, f.Kind, CoordinatorTarget, f.Target)
		}
		if f.At < prev {
			return fmt.Errorf("faultsim: fault %d: out of order (%v after %v)", i, f.At, prev)
		}
		prev = f.At
	}
	return nil
}

// Encode writes the plan as JSON.
func (p *Plan) Encode(w io.Writer) error {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("faultsim: encode plan: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("faultsim: write plan: %w", err)
	}
	return nil
}

// DecodePlan reads a JSON plan and validates it.
func DecodePlan(r io.Reader) (*Plan, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("faultsim: read plan: %w", err)
	}
	var p Plan
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("faultsim: decode plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Cursor walks a plan in time order, handing out the faults that have come
// due. Not safe for concurrent use; drive it from one clock.
type Cursor struct {
	faults []Fault
	next   int
}

// Cursor returns a fresh cursor over the plan. A nil plan yields an empty
// cursor.
func (p *Plan) Cursor() *Cursor {
	if p == nil {
		return &Cursor{}
	}
	return &Cursor{faults: p.Faults}
}

// Due returns, in order, every not-yet-delivered fault with At <= now.
func (c *Cursor) Due(now time.Duration) []Fault {
	start := c.next
	for c.next < len(c.faults) && c.faults[c.next].At <= now {
		c.next++
	}
	if c.next == start {
		return nil
	}
	return c.faults[start:c.next]
}

// Remaining reports how many faults have not been delivered yet.
func (c *Cursor) Remaining() int { return len(c.faults) - c.next }

// ErrExhausted is returned by plan helpers when no faults remain (reserved
// for future schedule composition).
var ErrExhausted = errors.New("faultsim: plan exhausted")
